// Package store is a content-addressed result cache.  A completed MuT
// shard is a pure function of its identity — OS profile, MuT, case
// budget, chaos plan, code version — so the packed result can be keyed
// by a hash of that identity and served instead of re-executed.  The
// cache is strictly an accelerator: a hit must reproduce the exact
// bytes execution would have produced, so cache on/off stays pure
// observation and the determinism oracles keep guarding it.
//
// The in-memory tier is a sharded map with a bounded size and LRU
// eviction per shard.  An optional on-disk segment (see segment.go)
// persists entries across processes with the same torn-tail tolerance
// as the checkpoint journals.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
)

// Key is a content address: sha256 over the canonical JSON encoding of
// a shard identity.
type Key [sha256.Size]byte

// String renders the key as lowercase hex.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey decodes a hex key string.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(k) {
		return k, fmt.Errorf("store: bad key %q", s)
	}
	copy(k[:], b)
	return k, nil
}

// KeyOf hashes an identity value into a content address.  json.Marshal
// is canonical for struct identities: field order follows declaration
// order, so equal identities always produce equal keys.
func KeyOf(identity any) (Key, error) {
	b, err := json.Marshal(identity)
	if err != nil {
		return Key{}, fmt.Errorf("store: encoding identity: %w", err)
	}
	return Key(sha256.Sum256(b)), nil
}

// Entry is one cached shard result, packed in the checkpoint-journal
// wire form: one class digit and one exceptional flag per case, plus
// the machine reboots the shard consumed.
type Entry struct {
	Classes     string `json:"classes"`
	Exceptional string `json:"exceptional"`
	Incomplete  bool   `json:"incomplete,omitempty"`
	Reboots     int    `json:"reboots,omitempty"`
}

// check validates the packing structurally.  Class digit semantics are
// the caller's domain; here we only guarantee the shapes line up so a
// torn or corrupted segment line can never surface as a result.
func (e Entry) check() error {
	if len(e.Exceptional) != len(e.Classes) {
		return fmt.Errorf("store: entry has %d classes but %d flags", len(e.Classes), len(e.Exceptional))
	}
	for i := 0; i < len(e.Classes); i++ {
		if c := e.Classes[i]; c < '0' || c > '9' {
			return fmt.Errorf("store: bad class digit %q", c)
		}
	}
	for i := 0; i < len(e.Exceptional); i++ {
		if f := e.Exceptional[i]; f != '0' && f != '1' {
			return fmt.Errorf("store: bad flag digit %q", f)
		}
	}
	if e.Reboots < 0 {
		return fmt.Errorf("store: negative reboots %d", e.Reboots)
	}
	return nil
}

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Puts      uint64 `json:"puts"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
}

// DefaultMaxEntries bounds the in-memory tier when Options.MaxEntries
// is zero.  The full three-OS standard sweep is 237+94+91(+91 wide)
// shards, so the default holds many campaign variants at once.
const DefaultMaxEntries = 8192

// numShards spreads lock contention across independent LRU maps.  A
// power of two so the key's top byte masks cleanly.
const numShards = 16

// Options configures a Store.
type Options struct {
	// MaxEntries bounds the in-memory tier (0 = DefaultMaxEntries).
	MaxEntries int
	// Path, when set, backs the cache with an fsync'd on-disk segment:
	// existing entries load at Open, every Put appends.
	Path string
}

// Store is the content-addressed result cache.  All methods are safe
// for concurrent use and nil-receiver safe, so callers can thread an
// optional *Store without guarding every touch.
type Store struct {
	shards [numShards]shard

	hits      atomic.Uint64
	misses    atomic.Uint64
	puts      atomic.Uint64
	evictions atomic.Uint64

	seg *segment // nil when the cache is memory-only
}

// shard is one LRU-bounded slice of the key space.  The recency list is
// intrusive: nodes link each other, the map points at nodes.
type shard struct {
	mu    sync.Mutex
	max   int
	items map[Key]*node
	head  *node // most recently used
	tail  *node // eviction candidate
}

type node struct {
	key        Key
	e          Entry
	prev, next *node
}

// Open creates a store.  When o.Path is set the segment is loaded
// (torn tail lines skipped, like the checkpoint journals) and opened
// for appending; Close releases it.
func Open(o Options) (*Store, error) {
	max := o.MaxEntries
	if max <= 0 {
		max = DefaultMaxEntries
	}
	perShard := (max + numShards - 1) / numShards
	s := &Store{}
	for i := range s.shards {
		s.shards[i].max = perShard
		s.shards[i].items = make(map[Key]*node)
	}
	if o.Path != "" {
		seg, err := openSegment(o.Path, func(k Key, e Entry) {
			s.insert(k, e)
		})
		if err != nil {
			return nil, err
		}
		s.seg = seg
	}
	return s, nil
}

// Get returns the cached entry for a key, promoting it to most
// recently used.
func (s *Store) Get(k Key) (Entry, bool) {
	if s == nil {
		return Entry{}, false
	}
	sh := &s.shards[k[0]&(numShards-1)]
	sh.mu.Lock()
	n, ok := sh.items[k]
	if ok {
		sh.promote(n)
		e := n.e
		sh.mu.Unlock()
		s.hits.Add(1)
		return e, true
	}
	sh.mu.Unlock()
	s.misses.Add(1)
	return Entry{}, false
}

// Put caches an entry, evicting the least recently used entry in its
// shard when the bound is reached, and appends it to the segment when
// one is attached.  Structurally invalid entries are rejected — the
// cache must never be able to serve a result execution could not have
// produced.
func (s *Store) Put(k Key, e Entry) error {
	if s == nil {
		return nil
	}
	if err := e.check(); err != nil {
		return err
	}
	s.insert(k, e)
	s.puts.Add(1)
	if s.seg != nil {
		return s.seg.append(k, e)
	}
	return nil
}

// insert places an entry in the memory tier (no segment write, no put
// accounting — shared by Put and segment load).
func (s *Store) insert(k Key, e Entry) {
	sh := &s.shards[k[0]&(numShards-1)]
	sh.mu.Lock()
	if n, ok := sh.items[k]; ok {
		n.e = e
		sh.promote(n)
		sh.mu.Unlock()
		return
	}
	n := &node{key: k, e: e}
	sh.items[k] = n
	sh.push(n)
	var evicted bool
	if len(sh.items) > sh.max {
		old := sh.tail
		sh.unlink(old)
		delete(sh.items, old.key)
		evicted = true
	}
	sh.mu.Unlock()
	if evicted {
		s.evictions.Add(1)
	}
}

// Len returns the number of resident entries.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.items)
		sh.mu.Unlock()
	}
	return n
}

// Snapshot returns the effectiveness counters.
func (s *Store) Snapshot() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Puts:      s.puts.Load(),
		Evictions: s.evictions.Load(),
		Entries:   s.Len(),
	}
}

// Close releases the on-disk segment, if any.  The memory tier stays
// readable.
func (s *Store) Close() error {
	if s == nil || s.seg == nil {
		return nil
	}
	return s.seg.close()
}

// push links n at the head (most recently used).
func (sh *shard) push(n *node) {
	n.prev = nil
	n.next = sh.head
	if sh.head != nil {
		sh.head.prev = n
	}
	sh.head = n
	if sh.tail == nil {
		sh.tail = n
	}
}

// unlink removes n from the recency list.
func (sh *shard) unlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		sh.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		sh.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

// promote moves n to the head.
func (sh *shard) promote(n *node) {
	if sh.head == n {
		return
	}
	sh.unlink(n)
	sh.push(n)
}
