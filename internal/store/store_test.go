package store

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// keyN derives a distinct, well-distributed key for test entry n.
func keyN(n int) Key {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(n))
	return Key(sha256.Sum256(b[:]))
}

func entryN(n int) Entry {
	return Entry{
		Classes:     fmt.Sprintf("%d%d", n%6, (n+1)%6),
		Exceptional: fmt.Sprintf("%d%d", n%2, (n+1)%2),
		Reboots:     n % 3,
	}
}

func TestGetPutRoundTrip(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	k, e := keyN(1), entryN(1)
	if _, ok := s.Get(k); ok {
		t.Fatal("hit on empty store")
	}
	if err := s.Put(k, e); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k)
	if !ok || got != e {
		t.Fatalf("Get = %+v, %v; want %+v, true", got, ok, e)
	}
	st := s.Snapshot()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNilStoreIsSafe(t *testing.T) {
	var s *Store
	if _, ok := s.Get(keyN(0)); ok {
		t.Fatal("nil store hit")
	}
	if err := s.Put(keyN(0), entryN(0)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 || s.Snapshot() != (Stats{}) {
		t.Fatal("nil store has state")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPutRejectsMalformedEntries(t *testing.T) {
	s, _ := Open(Options{})
	bad := []Entry{
		{Classes: "01", Exceptional: "0"},   // length mismatch
		{Classes: "0a", Exceptional: "00"},  // non-digit class
		{Classes: "01", Exceptional: "02"},  // non-boolean flag
		{Classes: "0", Exceptional: "0", Reboots: -1},
	}
	for _, e := range bad {
		if err := s.Put(keyN(0), e); err == nil {
			t.Errorf("Put(%+v) accepted", e)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("store holds %d entries after rejected puts", s.Len())
	}
}

func TestKeyOfIsStable(t *testing.T) {
	type id struct {
		OS  string `json:"os"`
		Cap int    `json:"cap"`
	}
	a, err := KeyOf(id{OS: "winnt", Cap: 500})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := KeyOf(id{OS: "winnt", Cap: 500})
	c, _ := KeyOf(id{OS: "winnt", Cap: 501})
	if a != b {
		t.Fatal("equal identities produced different keys")
	}
	if a == c {
		t.Fatal("different identities produced equal keys")
	}
	parsed, err := ParseKey(a.String())
	if err != nil || parsed != a {
		t.Fatalf("ParseKey(String) = %v, %v", parsed, err)
	}
}

// TestLRUBoundHoldsUnderChurn inserts far more entries than the bound
// and verifies residency never exceeds it, recently used entries
// survive, and the eviction counter accounts for every displacement.
func TestLRUBoundHoldsUnderChurn(t *testing.T) {
	const max = 64
	s, err := Open(Options{MaxEntries: max})
	if err != nil {
		t.Fatal(err)
	}
	// The per-shard bound rounds up, so the effective cap is within one
	// shard's worth of the requested max.
	cap := ((max + numShards - 1) / numShards) * numShards
	for i := 0; i < 50*max; i++ {
		if err := s.Put(keyN(i), entryN(i)); err != nil {
			t.Fatal(err)
		}
		if n := s.Len(); n > cap {
			t.Fatalf("after %d puts: %d entries resident, cap %d", i+1, n, cap)
		}
		// Keep key 0 hot: it must never be evicted.
		if _, ok := s.Get(keyN(0)); !ok {
			t.Fatalf("hot key evicted after %d puts", i+1)
		}
	}
	st := s.Snapshot()
	if st.Puts != 50*max {
		t.Fatalf("puts = %d, want %d", st.Puts, 50*max)
	}
	if int(st.Puts)-int(st.Evictions) != st.Entries {
		t.Fatalf("puts %d - evictions %d != entries %d", st.Puts, st.Evictions, st.Entries)
	}
}

// TestConcurrentGetPutHammer drives every shard from many goroutines at
// once; run under -race this is the store's data-race oracle.
func TestConcurrentGetPutHammer(t *testing.T) {
	s, err := Open(Options{MaxEntries: 256})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				n := (w*perWorker + i) % 512
				switch i % 3 {
				case 0:
					if err := s.Put(keyN(n), entryN(n)); err != nil {
						t.Error(err)
						return
					}
				default:
					if e, ok := s.Get(keyN(n)); ok && e != entryN(n) {
						t.Errorf("key %d: got %+v want %+v", n, e, entryN(n))
						return
					}
				}
				_ = s.Len()
			}
		}(w)
	}
	wg.Wait()
	st := s.Snapshot()
	if st.Hits+st.Misses == 0 || st.Puts == 0 {
		t.Fatalf("hammer recorded no traffic: %+v", st)
	}
}

func TestSegmentPersistsAcrossOpens(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.seg")
	s, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Put(keyN(i), entryN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 20 {
		t.Fatalf("reloaded %d entries, want 20", re.Len())
	}
	for i := 0; i < 20; i++ {
		e, ok := re.Get(keyN(i))
		if !ok || e != entryN(i) {
			t.Fatalf("entry %d: got %+v, %v", i, e, ok)
		}
	}
}

// TestSegmentToleratesTornTail truncates the segment mid-record — the
// crash-mid-write shape — and verifies the intact prefix still loads
// and the reopened segment keeps accepting appends.
func TestSegmentToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.seg")
	s, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put(keyN(i), entryN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 9 {
		t.Fatalf("reloaded %d entries from torn segment, want 9", re.Len())
	}
	// The torn record is gone, the rest round-trip.
	if _, ok := re.Get(keyN(9)); ok {
		t.Fatal("torn tail record served")
	}
	if err := re.Put(keyN(10), entryN(10)); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	re2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if re2.Len() != 10 {
		t.Fatalf("after append-past-tear: %d entries, want 10", re2.Len())
	}
}

// TestSegmentRejectsVersionSkew ensures a segment from a future format
// fails loudly instead of silently serving misdecoded entries.
func TestSegmentRejectsVersionSkew(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.seg")
	line := fmt.Sprintf("{\"v\":%d,\"key\":\"%s\",\"classes\":\"0\",\"exceptional\":\"0\"}\n",
		segmentVersion+1, keyN(0))
	if err := os.WriteFile(path, []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Path: path}); err == nil {
		t.Fatal("future-version segment loaded")
	}
}
