package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"ballista"
	"ballista/internal/core"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(NewServer())
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, in, out any) int {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode
}

func TestOSesEndpoint(t *testing.T) {
	ts := testServer(t)
	var names []string
	if code := getJSON(t, ts.URL+"/api/oses", &names); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(names) != 7 {
		t.Errorf("oses = %v", names)
	}
}

func TestMuTsEndpoint(t *testing.T) {
	ts := testServer(t)
	var muts []MuTInfo
	if code := getJSON(t, ts.URL+"/api/muts?os=win98", &muts); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(muts) != 247 { // paper's 237 + the 10 Winsock calls
		t.Errorf("win98 MuTs = %d, want 247", len(muts))
	}
	var bad map[string]string
	if code := getJSON(t, ts.URL+"/api/muts?os=beos", &bad); code != http.StatusBadRequest {
		t.Errorf("unknown os status %d", code)
	}
}

func TestCampaignEndpoint(t *testing.T) {
	ts := testServer(t)
	var resp CampaignResponse
	code := postJSON(t, ts.URL+"/api/campaign",
		CampaignRequest{OS: "winnt", MuT: "ReadFile", Cap: 200}, &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.Cases == 0 || resp.Abort == 0 {
		t.Errorf("campaign response: %+v", resp)
	}
	if resp.Catastrophic != 0 {
		t.Errorf("NT ReadFile crashed: %+v", resp)
	}
	// Unknown MuT for the OS.
	var errResp map[string]string
	code = postJSON(t, ts.URL+"/api/campaign",
		CampaignRequest{OS: "linux", MuT: "ReadFile"}, &errResp)
	if code != http.StatusNotFound {
		t.Errorf("ReadFile on Linux status %d", code)
	}
}

// TestCaseEndpointListing1: the service reproduces Listing 1 remotely,
// as the paper's testing-service architecture did for its clients.
func TestCaseEndpointListing1(t *testing.T) {
	ts := testServer(t)
	idxHandle, idxNull := listing1Indices(t)
	for _, tt := range []struct {
		os   string
		want string
	}{
		{"win95", "catastrophic"},
		{"win98", "catastrophic"},
		{"wince", "catastrophic"},
		{"winnt", "abort"},
		{"win2000", "abort"},
	} {
		var resp CaseResponse
		code := postJSON(t, ts.URL+"/api/case",
			CaseRequest{OS: tt.os, MuT: "GetThreadContext", Case: []int{idxHandle, idxNull}}, &resp)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d", tt.os, code)
		}
		if resp.Class != tt.want {
			t.Errorf("%s: class %q, want %q", tt.os, resp.Class, tt.want)
		}
	}
	// Arity validation.
	var errResp map[string]string
	code := postJSON(t, ts.URL+"/api/case",
		CaseRequest{OS: "win98", MuT: "GetThreadContext", Case: []int{0}}, &errResp)
	if code != http.StatusBadRequest {
		t.Errorf("bad arity status %d", code)
	}
}

func TestSummaryEndpoint(t *testing.T) {
	ts := testServer(t)
	var resp SummaryResponse
	code := getJSON(t, ts.URL+"/api/summary?os=win98&cap=60", &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.SysTested != 153 || resp.CLibTested != 94 { // 143 + 10 Winsock
		t.Errorf("summary census: %+v", resp)
	}
	if resp.TotalCatastrophic == 0 {
		t.Error("Windows 98 summary shows no Catastrophic MuTs")
	}
}

// listing1Indices finds the pool indices for the Listing 1 case.
func listing1Indices(t *testing.T) (handleIdx, nullIdx int) {
	t.Helper()
	reg := registryForTest()
	find := func(typeName, valueName string) int {
		dt, ok := reg.Lookup(typeName)
		if !ok {
			t.Fatalf("type %s missing", typeName)
		}
		for i, v := range dt.Values {
			if v.Name == valueName {
				return i
			}
		}
		t.Fatalf("value %s/%s missing", typeName, valueName)
		return -1
	}
	return find("HTHREAD", "PSEUDO_THREAD"), find("LPCONTEXT", "NULL")
}

func registryForTest() *core.Registry { return ballista.Registry() }

// TestHandlerErrors walks every 4xx path the service can produce and
// checks both the status code and that the error body is well-formed
// JSON with an "error" key.
func TestHandlerErrors(t *testing.T) {
	ts := testServer(t)
	for _, tt := range []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"campaign bad JSON", "POST", "/api/campaign", `{"os":`, http.StatusBadRequest},
		{"campaign unknown os", "POST", "/api/campaign", `{"os":"beos","mut":"ReadFile"}`, http.StatusBadRequest},
		{"campaign unknown mut", "POST", "/api/campaign", `{"os":"win98","mut":"NtQuarks"}`, http.StatusNotFound},
		{"case bad JSON", "POST", "/api/case", `not json`, http.StatusBadRequest},
		{"case unknown os", "POST", "/api/case", `{"os":"os2","mut":"ReadFile","case":[0]}`, http.StatusBadRequest},
		{"case unknown mut", "POST", "/api/case", `{"os":"win98","mut":"NtQuarks","case":[0]}`, http.StatusNotFound},
		{"case arity mismatch", "POST", "/api/case", `{"os":"win98","mut":"GetThreadContext","case":[0]}`, http.StatusBadRequest},
		{"muts missing os", "GET", "/api/muts", "", http.StatusBadRequest},
		{"muts unknown os", "GET", "/api/muts?os=solaris", "", http.StatusBadRequest},
		{"summary unknown os", "GET", "/api/summary?os=beos", "", http.StatusBadRequest},
		{"summary bad cap", "GET", "/api/summary?os=win98&cap=zero", "", http.StatusBadRequest},
		{"summary negative cap", "GET", "/api/summary?os=win98&cap=-5", "", http.StatusBadRequest},
		{"events bad n", "GET", "/api/events?n=plenty", "", http.StatusBadRequest},
		{"events negative n", "GET", "/api/events?n=-1", "", http.StatusBadRequest},
	} {
		t.Run(tt.name, func(t *testing.T) {
			var resp *http.Response
			var err error
			switch tt.method {
			case "GET":
				resp, err = http.Get(ts.URL + tt.path)
			default:
				resp, err = http.Post(ts.URL+tt.path, "application/json", strings.NewReader(tt.body))
			}
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tt.want {
				t.Fatalf("status %d, want %d", resp.StatusCode, tt.want)
			}
			var body map[string]string
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatalf("error body is not JSON: %v", err)
			}
			if body["error"] == "" {
				t.Errorf("error body %v has no error key", body)
			}
		})
	}
}

func TestEventsEndpoint(t *testing.T) {
	ts := testServer(t)
	idxHandle, idxNull := listing1Indices(t)
	var caseResp CaseResponse
	if code := postJSON(t, ts.URL+"/api/case",
		CaseRequest{OS: "winnt", MuT: "GetThreadContext", Case: []int{idxHandle, idxNull}}, &caseResp); code != http.StatusOK {
		t.Fatalf("case status %d", code)
	}
	var ev EventsResponse
	if code := getJSON(t, ts.URL+"/api/events?n=10", &ev); code != http.StatusOK {
		t.Fatalf("events status %d", code)
	}
	if ev.Seen == 0 || len(ev.Events) == 0 {
		t.Fatalf("events after a case run: %+v", ev)
	}
	last := ev.Events[len(ev.Events)-1]
	if last.Type != "case" || last.OS != "winnt" || last.MuT != "GetThreadContext" {
		t.Errorf("last event = %+v", last)
	}
	if last.Class != caseResp.Class {
		t.Errorf("event class %q, case response class %q", last.Class, caseResp.Class)
	}
	// The ring starts empty on a fresh server.
	fresh := testServer(t)
	if code := getJSON(t, fresh.URL+"/api/events", &ev); code != http.StatusOK {
		t.Fatalf("fresh events status %d", code)
	}
	if ev.Seen != 0 || len(ev.Events) != 0 {
		t.Errorf("fresh server events: %+v", ev)
	}
}

// promLine matches the Prometheus text exposition format's sample lines:
// metric_name{label="v",...} value
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (?:[-+]?[0-9.eE+-]+|NaN|\+Inf)$`)

func TestMetricsEndpoint(t *testing.T) {
	ts := testServer(t)
	var resp CampaignResponse
	if code := postJSON(t, ts.URL+"/api/campaign",
		CampaignRequest{OS: "winnt", MuT: "ReadFile", Cap: 120}, &resp); code != http.StatusOK {
		t.Fatalf("campaign status %d", code)
	}
	httpResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", httpResp.StatusCode)
	}
	if ct := httpResp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(httpResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)

	// Every non-comment, non-blank line must parse as a Prometheus sample.
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("unparseable metrics line: %q", line)
		}
	}

	// Per-class case counters from the campaign.
	for _, class := range []string{"clean", "error-return", "abort"} {
		want := "ballista_cases_total{class=\"" + class + "\"}"
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %s", want)
		}
	}
	// Kernel gauges (the acceptance floor is three).
	for _, gauge := range []string{
		"ballista_kernel_corruption_level",
		"ballista_kernel_live_handles",
		"ballista_kernel_mapped_pages",
		"ballista_kernel_epoch",
		"ballista_kernel_heap_blocks",
	} {
		if !strings.Contains(text, gauge+"{os=\"winnt\"}") {
			t.Errorf("metrics missing kernel gauge %s", gauge)
		}
	}
	// The middleware counted the campaign POST.
	if !strings.Contains(text, `ballista_http_requests_total{method="POST",path="/api/campaign",status="200"}`) {
		t.Error("metrics missing http request counter for the campaign POST")
	}
	if !strings.Contains(text, "ballista_http_request_duration_seconds_bucket") {
		t.Error("metrics missing http latency histogram")
	}
}

// TestCaseReplayFromEvents closes the observability loop the ISSUE asks
// for: a Catastrophic case recorded during a campaign replays to
// Catastrophic through POST /api/case, using the trace record's own
// {os, mut, case, wide} fields as the request.
func TestCaseReplayFromEvents(t *testing.T) {
	ts := testServer(t)
	var camp CampaignResponse
	if code := postJSON(t, ts.URL+"/api/campaign",
		CampaignRequest{OS: "win98", MuT: "GetThreadContext", Cap: 200}, &camp); code != http.StatusOK {
		t.Fatalf("campaign status %d", code)
	}
	if camp.Catastrophic == 0 {
		t.Fatal("win98 GetThreadContext campaign produced no Catastrophic case")
	}
	var ev EventsResponse
	if code := getJSON(t, ts.URL+"/api/events?n=1000", &ev); code != http.StatusOK {
		t.Fatalf("events status %d", code)
	}
	var replayed bool
	for _, rec := range ev.Events {
		// Immediate pointer crashes reproduce in isolation; accumulated-
		// corruption crashes are exactly the paper's non-reproducing "*"
		// cases, so skip them.
		if rec.Type != "case" || rec.Class != "catastrophic" ||
			!strings.Contains(rec.CrashReason, "invalid pointer") {
			continue
		}
		var resp CaseResponse
		if code := postJSON(t, ts.URL+"/api/case",
			CaseRequest{OS: rec.OS, MuT: rec.MuT, Case: rec.Case, Wide: rec.Wide}, &resp); code != http.StatusOK {
			t.Fatalf("replay status %d", code)
		}
		if resp.Class != "catastrophic" {
			t.Errorf("replay of %s%v on %s = %q, want catastrophic", rec.MuT, rec.Case, rec.OS, resp.Class)
		}
		replayed = true
		break
	}
	if !replayed {
		t.Fatal("no immediate-crash Catastrophic case record found to replay")
	}
}

func TestExploreEndpoint(t *testing.T) {
	ts := testServer(t)

	var rep ballista.ExploreReport
	status := postJSON(t, ts.URL+"/api/explore", ExploreRequest{
		OS: "win98", Seed: 1, Chains: 60, Workers: 2,
	}, &rep)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if rep.Executed != 60 {
		t.Errorf("executed %d, requested 60", rep.Executed)
	}
	if rep.CorpusSize == 0 {
		t.Error("no corpus growth")
	}
	if len(rep.Divergences) == 0 {
		t.Error("no divergences reported")
	}

	// The campaign's chain events must be visible on the ring and in the
	// metrics registry.
	var evs EventsResponse
	if status := getJSON(t, ts.URL+"/api/events?n=2000", &evs); status != http.StatusOK {
		t.Fatalf("events status %d", status)
	}
	chains := 0
	for _, rec := range evs.Events {
		if rec.Type == "chain" {
			chains++
			if len(rec.Steps) == 0 {
				t.Error("chain event without steps")
			}
		}
	}
	if chains == 0 {
		t.Error("no chain events on the ring")
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "ballista_explore_chains_total 60") {
		t.Error("explore chain counter missing from /metrics")
	}

	// Same seed again: the report must be identical (the second run adds
	// another 60 chains to the counters, but the report body matches).
	var rep2 ballista.ExploreReport
	postJSON(t, ts.URL+"/api/explore", ExploreRequest{
		OS: "win98", Seed: 1, Chains: 60, Workers: 7,
	}, &rep2)
	b1, _ := json.Marshal(rep)
	b2, _ := json.Marshal(rep2)
	if !bytes.Equal(b1, b2) {
		t.Error("same-seed explore reports differ across requests/worker counts")
	}
}

func TestExploreEndpointErrors(t *testing.T) {
	ts := testServer(t)
	var out map[string]any
	if status := postJSON(t, ts.URL+"/api/explore", ExploreRequest{OS: "beos"}, &out); status != http.StatusBadRequest {
		t.Errorf("unknown os: status %d", status)
	}
	if status := postJSON(t, ts.URL+"/api/explore", ExploreRequest{OSes: []string{"win98", "beos"}}, &out); status != http.StatusBadRequest {
		t.Errorf("unknown oracle os: status %d", status)
	}
	if status := postJSON(t, ts.URL+"/api/explore", ExploreRequest{Chains: MaxExploreChains + 1}, &out); status != http.StatusBadRequest {
		t.Errorf("over-budget: status %d", status)
	}
	if status := postJSON(t, ts.URL+"/api/explore", ExploreRequest{MuTs: []string{"no_such"}}, &out); status != http.StatusBadRequest {
		t.Errorf("unknown mut: status %d", status)
	}
}
