package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"ballista"
	"ballista/internal/core"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(NewServer())
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, in, out any) int {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode
}

func TestOSesEndpoint(t *testing.T) {
	ts := testServer(t)
	var names []string
	if code := getJSON(t, ts.URL+"/api/oses", &names); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(names) != 7 {
		t.Errorf("oses = %v", names)
	}
}

func TestMuTsEndpoint(t *testing.T) {
	ts := testServer(t)
	var muts []MuTInfo
	if code := getJSON(t, ts.URL+"/api/muts?os=win98", &muts); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(muts) != 237 {
		t.Errorf("win98 MuTs = %d, want 237", len(muts))
	}
	var bad map[string]string
	if code := getJSON(t, ts.URL+"/api/muts?os=beos", &bad); code != http.StatusBadRequest {
		t.Errorf("unknown os status %d", code)
	}
}

func TestCampaignEndpoint(t *testing.T) {
	ts := testServer(t)
	var resp CampaignResponse
	code := postJSON(t, ts.URL+"/api/campaign",
		CampaignRequest{OS: "winnt", MuT: "ReadFile", Cap: 200}, &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.Cases == 0 || resp.Abort == 0 {
		t.Errorf("campaign response: %+v", resp)
	}
	if resp.Catastrophic != 0 {
		t.Errorf("NT ReadFile crashed: %+v", resp)
	}
	// Unknown MuT for the OS.
	var errResp map[string]string
	code = postJSON(t, ts.URL+"/api/campaign",
		CampaignRequest{OS: "linux", MuT: "ReadFile"}, &errResp)
	if code != http.StatusNotFound {
		t.Errorf("ReadFile on Linux status %d", code)
	}
}

// TestCaseEndpointListing1: the service reproduces Listing 1 remotely,
// as the paper's testing-service architecture did for its clients.
func TestCaseEndpointListing1(t *testing.T) {
	ts := testServer(t)
	idxHandle, idxNull := listing1Indices(t)
	for _, tt := range []struct {
		os   string
		want string
	}{
		{"win95", "catastrophic"},
		{"win98", "catastrophic"},
		{"wince", "catastrophic"},
		{"winnt", "abort"},
		{"win2000", "abort"},
	} {
		var resp CaseResponse
		code := postJSON(t, ts.URL+"/api/case",
			CaseRequest{OS: tt.os, MuT: "GetThreadContext", Case: []int{idxHandle, idxNull}}, &resp)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d", tt.os, code)
		}
		if resp.Class != tt.want {
			t.Errorf("%s: class %q, want %q", tt.os, resp.Class, tt.want)
		}
	}
	// Arity validation.
	var errResp map[string]string
	code := postJSON(t, ts.URL+"/api/case",
		CaseRequest{OS: "win98", MuT: "GetThreadContext", Case: []int{0}}, &errResp)
	if code != http.StatusBadRequest {
		t.Errorf("bad arity status %d", code)
	}
}

func TestSummaryEndpoint(t *testing.T) {
	ts := testServer(t)
	var resp SummaryResponse
	code := getJSON(t, ts.URL+"/api/summary?os=win98&cap=60", &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.SysTested != 143 || resp.CLibTested != 94 {
		t.Errorf("summary census: %+v", resp)
	}
	if resp.TotalCatastrophic == 0 {
		t.Error("Windows 98 summary shows no Catastrophic MuTs")
	}
}

// listing1Indices finds the pool indices for the Listing 1 case.
func listing1Indices(t *testing.T) (handleIdx, nullIdx int) {
	t.Helper()
	reg := registryForTest()
	find := func(typeName, valueName string) int {
		dt, ok := reg.Lookup(typeName)
		if !ok {
			t.Fatalf("type %s missing", typeName)
		}
		for i, v := range dt.Values {
			if v.Name == valueName {
				return i
			}
		}
		t.Fatalf("value %s/%s missing", typeName, valueName)
		return -1
	}
	return find("HTHREAD", "PSEUDO_THREAD"), find("LPCONTEXT", "NULL")
}

func registryForTest() *core.Registry { return ballista.Registry() }
