// Package service exposes the Ballista harness the way the paper's §2
// describes the original: "publicly available as an Internet-based
// testing service involving a central testing server and a portable
// testing client".  The server owns the campaign machinery; clients
// submit a Module under Test (or a single identified test case — the
// paper's single-test reproduction programs) and receive the CRASH
// classification over HTTP.
//
// Endpoints:
//
//	GET  /api/oses                      the seven systems under test
//	GET  /api/muts?os=<name>            the MuT catalog for one OS
//	POST /api/campaign                  run one MuT's capped campaign
//	POST /api/case                      run one identified test case
//	GET  /api/summary?os=<name>&cap=N   Table 1 row for one OS
package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"ballista"
	"ballista/internal/catalog"
	"ballista/internal/core"
	"ballista/internal/osprofile"
	"ballista/internal/report"
)

// CampaignRequest asks the server to test one MuT.
type CampaignRequest struct {
	OS       string `json:"os"`
	MuT      string `json:"mut"`
	Wide     bool   `json:"wide,omitempty"`
	Cap      int    `json:"cap,omitempty"`
	Isolated bool   `json:"isolated,omitempty"`
}

// CampaignResponse carries one MuT's campaign outcome.
type CampaignResponse struct {
	OS           string  `json:"os"`
	MuT          string  `json:"mut"`
	Group        string  `json:"group"`
	Cases        int     `json:"cases"`
	Clean        int     `json:"clean"`
	ErrorReturn  int     `json:"error_return"`
	Abort        int     `json:"abort"`
	Restart      int     `json:"restart"`
	Catastrophic int     `json:"catastrophic"`
	Skip         int     `json:"skip"`
	AbortRate    float64 `json:"abort_rate"`
	RestartRate  float64 `json:"restart_rate"`
	Incomplete   bool    `json:"incomplete"`
}

// CaseRequest asks for one identified test case (the paper's
// single-test-program mode; Listing 1 is {"os":"win98",
// "mut":"GetThreadContext","case":[3,0]} with the pseudo-handle and NULL
// value indices).
type CaseRequest struct {
	OS   string `json:"os"`
	MuT  string `json:"mut"`
	Case []int  `json:"case"`
	Wide bool   `json:"wide,omitempty"`
}

// CaseResponse reports the CRASH classification of a single case.
type CaseResponse struct {
	Class string `json:"class"`
}

// MuTInfo describes one catalog entry on the wire.
type MuTInfo struct {
	Name    string   `json:"name"`
	API     string   `json:"api"`
	Group   string   `json:"group"`
	Params  []string `json:"params"`
	HasWide bool     `json:"has_wide,omitempty"`
}

// SummaryResponse is a Table 1 row.
type SummaryResponse struct {
	OS                string  `json:"os"`
	SysTested         int     `json:"sys_tested"`
	SysCatastrophic   int     `json:"sys_catastrophic"`
	SysAbortPct       float64 `json:"sys_abort_pct"`
	SysRestartPct     float64 `json:"sys_restart_pct"`
	CLibTested        int     `json:"clib_tested"`
	CLibCatastrophic  int     `json:"clib_catastrophic"`
	CLibAbortPct      float64 `json:"clib_abort_pct"`
	CLibRestartPct    float64 `json:"clib_restart_pct"`
	TotalCatastrophic int     `json:"total_catastrophic"`
	CasesRun          int     `json:"cases_run"`
	Reboots           int     `json:"reboots"`
}

// Server is the Ballista testing service.  The zero value is not usable;
// call NewServer.
type Server struct {
	mux *http.ServeMux
}

// NewServer builds the service with all routes installed.
func NewServer() *Server {
	s := &Server{mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /api/oses", s.handleOSes)
	s.mux.HandleFunc("GET /api/muts", s.handleMuTs)
	s.mux.HandleFunc("POST /api/campaign", s.handleCampaign)
	s.mux.HandleFunc("POST /api/case", s.handleCase)
	s.mux.HandleFunc("GET /api/summary", s.handleSummary)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleOSes(w http.ResponseWriter, _ *http.Request) {
	names := make([]string, 0, 7)
	for _, o := range ballista.AllOSes() {
		names = append(names, o.WireName())
	}
	writeJSON(w, http.StatusOK, names)
}

func (s *Server) handleMuTs(w http.ResponseWriter, r *http.Request) {
	o, ok := parseOS(r.URL.Query().Get("os"))
	if !ok {
		httpError(w, http.StatusBadRequest, "unknown or missing os")
		return
	}
	var out []MuTInfo
	for _, m := range catalog.MuTsFor(o) {
		out = append(out, MuTInfo{
			Name: m.Name, API: m.API.String(), Group: m.Group.String(),
			Params: m.Params, HasWide: m.HasWide,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	var req CampaignRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	o, ok := parseOS(req.OS)
	if !ok {
		httpError(w, http.StatusBadRequest, "unknown os")
		return
	}
	m, ok := mutFor(o, req.MuT)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("%q is not tested on %s", req.MuT, o))
		return
	}
	opts := []ballista.Option{}
	if req.Cap > 0 {
		opts = append(opts, ballista.WithCap(req.Cap))
	}
	if req.Isolated {
		opts = append(opts, ballista.WithIsolation())
	}
	res, err := ballista.NewRunner(o, opts...).RunMuT(m, req.Wide)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, CampaignResponse{
		OS: o.String(), MuT: res.Name(), Group: m.Group.String(),
		Cases:        res.Executed(),
		Clean:        res.Count(core.RawClean),
		ErrorReturn:  res.Count(core.RawError),
		Abort:        res.Count(core.RawAbort),
		Restart:      res.Count(core.RawRestart),
		Catastrophic: res.Count(core.RawCatastrophic),
		Skip:         res.Count(core.RawSkip),
		AbortRate:    res.AbortRate(),
		RestartRate:  res.RestartRate(),
		Incomplete:   res.Incomplete,
	})
}

func (s *Server) handleCase(w http.ResponseWriter, r *http.Request) {
	var req CaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	o, ok := parseOS(req.OS)
	if !ok {
		httpError(w, http.StatusBadRequest, "unknown os")
		return
	}
	m, ok := mutFor(o, req.MuT)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("%q is not tested on %s", req.MuT, o))
		return
	}
	if len(req.Case) != len(m.Params) {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("%s takes %d parameters, case has %d", m.Name, len(m.Params), len(req.Case)))
		return
	}
	cls, err := ballista.NewRunner(o, ballista.WithIsolation()).RunCase(m, core.Case(req.Case), req.Wide)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, CaseResponse{Class: cls.String()})
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	o, ok := parseOS(r.URL.Query().Get("os"))
	if !ok {
		httpError(w, http.StatusBadRequest, "unknown or missing os")
		return
	}
	cap := 300
	if v := r.URL.Query().Get("cap"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			httpError(w, http.StatusBadRequest, "bad cap")
			return
		}
		cap = n
	}
	res, err := ballista.Run(o, ballista.WithCap(cap))
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	sum := report.Summarize(o, res)
	writeJSON(w, http.StatusOK, SummaryResponse{
		OS:                o.String(),
		SysTested:         sum.SysTested,
		SysCatastrophic:   sum.SysCatastrophic,
		SysAbortPct:       sum.SysAbortPct,
		SysRestartPct:     sum.SysRestartPct,
		CLibTested:        sum.CLibTested,
		CLibCatastrophic:  sum.CLibCatastrophic,
		CLibAbortPct:      sum.CLibAbortPct,
		CLibRestartPct:    sum.CLibRestartPct,
		TotalCatastrophic: sum.TotalCatastrophic,
		CasesRun:          res.CasesRun,
		Reboots:           res.Reboots,
	})
}

func parseOS(name string) (ballista.OS, bool) {
	return osprofile.Parse(name)
}

func mutFor(o ballista.OS, name string) (catalog.MuT, bool) {
	for _, m := range catalog.MuTsFor(o) {
		if m.Name == name {
			return m, true
		}
	}
	return catalog.MuT{}, false
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
