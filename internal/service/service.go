// Package service exposes the Ballista harness the way the paper's §2
// describes the original: "publicly available as an Internet-based
// testing service involving a central testing server and a portable
// testing client".  The server owns the campaign machinery; clients
// submit a Module under Test (or a single identified test case — the
// paper's single-test reproduction programs) and receive the CRASH
// classification over HTTP.
//
// Endpoints:
//
//	GET  /api/oses                      the seven systems under test
//	GET  /api/muts?os=<name>            the MuT catalog for one OS
//	POST /api/campaign                  run one MuT's capped campaign
//	                                    (mut "*": full catalog, farmed
//	                                    across parallel workers)
//	POST /api/crashcheck                run a bounded crash-consistency
//	                                    sweep across the OS profiles
//	POST /api/scarcecheck               run a bounded resource-scarcity
//	                                    sweep across the OS profiles
//	POST /api/hinder                    run the Hindering-failure oracle
//	                                    for one OS
//	POST /api/case                      run one identified test case
//	GET  /api/summary?os=<name>&cap=N&workers=W   Table 1 row for one OS
//	GET  /api/events?n=K                most recent K trace events
//	GET  /api/spans?n=K                 most recent K flight-recorder spans
//	GET  /metrics                       Prometheus text exposition
//	POST /api/fleet/campaign            coordinate a distributed campaign
//	                                    (ballista -join workers execute it)
//	GET  /api/fleet/status              active fleet campaign progress
//	ANY  /fleet/v1/...                  worker fabric (see internal/fleet)
//
// Campaigns honor the request context: a client that disconnects — or a
// server drain that cancels base contexts — stops the campaign at the
// next test-case boundary instead of grinding to the cap.
//
// The server degrades gracefully under pressure: heavy requests
// (campaigns, fuzzing runs, summaries) are capped at a fixed in-flight
// count, excess load is shed with 429 + Retry-After, and an optional
// per-request timeout bounds how long one campaign can hold a slot.
// Campaign requests may carry a "chaos" block selecting a seeded
// environmental-fault plan (see internal/chaos); injection counters
// surface at /metrics as ballista_chaos_*.
//
// Every campaign the server runs is observed: per-case trace events
// land in an in-memory ring (and any attached trace writer), and the
// metrics registry accumulates CRASH-class counters, latency histograms
// and sim-kernel gauges.  All requests pass through counting/latency
// middleware feeding the same registry.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"ballista"
	"ballista/internal/catalog"
	"ballista/internal/chaos"
	"ballista/internal/core"
	"ballista/internal/fleet"
	"ballista/internal/osprofile"
	"ballista/internal/report"
	"ballista/internal/store"
	"ballista/internal/telemetry"
	"ballista/internal/telemetry/span"
)

// CampaignRequest asks the server to test one MuT — or, with MuT "*",
// the OS's full catalog, sharded across a farm of parallel workers.
type CampaignRequest struct {
	OS       string `json:"os"`
	MuT      string `json:"mut"`
	Wide     bool   `json:"wide,omitempty"`
	Cap      int    `json:"cap,omitempty"`
	Isolated bool   `json:"isolated,omitempty"`
	// Workers sizes the farm for full-catalog ("*") campaigns; 0 means
	// one worker per CPU.  Ignored for single-MuT requests.
	Workers int `json:"workers,omitempty"`
	// Chaos, when present, runs the campaign under a seeded
	// environmental-fault plan (see internal/chaos).
	Chaos *ChaosSpec `json:"chaos,omitempty"`
}

// ChaosSpec selects a fault plan for one campaign request: either a
// named preset ("disk", "mem", "hang", "harness", "all") with a seed, or
// explicit rules.  CaseDeadlineMS arms the per-case watchdog; plans with
// kern.wedge rules need it (wedge points stay disarmed without one).
type ChaosSpec struct {
	Preset         string       `json:"preset,omitempty"`
	Seed           uint64       `json:"seed,omitempty"`
	Rules          []chaos.Rule `json:"rules,omitempty"`
	CaseDeadlineMS int          `json:"case_deadline_ms,omitempty"`
}

// plan resolves the spec into a validated chaos plan.
func (cs *ChaosSpec) plan() (*chaos.Plan, error) {
	if cs.Preset != "" {
		if len(cs.Rules) > 0 {
			return nil, errors.New("chaos: preset and rules are mutually exclusive")
		}
		return chaos.Preset(cs.Preset, cs.Seed)
	}
	p := &chaos.Plan{Seed: cs.Seed, Rules: cs.Rules}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// CampaignResponse carries one MuT's campaign outcome.
type CampaignResponse struct {
	OS           string  `json:"os"`
	MuT          string  `json:"mut"`
	Group        string  `json:"group"`
	Cases        int     `json:"cases"`
	Clean        int     `json:"clean"`
	ErrorReturn  int     `json:"error_return"`
	Abort        int     `json:"abort"`
	Restart      int     `json:"restart"`
	Catastrophic int     `json:"catastrophic"`
	Skip         int     `json:"skip"`
	AbortRate    float64 `json:"abort_rate"`
	RestartRate  float64 `json:"restart_rate"`
	Incomplete   bool    `json:"incomplete"`
}

// FarmCampaignResponse summarizes a full-catalog parallel campaign: the
// merged (deterministic, catalog-ordered) per-MuT rows plus farm-level
// totals.
type FarmCampaignResponse struct {
	OS           string             `json:"os"`
	Workers      int                `json:"workers"`
	MuTs         int                `json:"muts"`
	CasesRun     int                `json:"cases_run"`
	Reboots      int                `json:"reboots"`
	Catastrophic []string           `json:"catastrophic,omitempty"`
	Results      []CampaignResponse `json:"results"`
}

// FleetCampaignRequest asks the server to coordinate one distributed
// full-catalog campaign: the server becomes the fleet coordinator
// (leases at /fleet/v1/) and the request blocks until `ballista -join`
// workers drain the shard catalog.  One fleet campaign runs at a time;
// a second request is rejected with 409 while the first is active.
// Journalled resume is a CLI-coordinator feature (-serve-fleet
// -checkpoint); the service keeps its fleet campaigns in memory.
type FleetCampaignRequest struct {
	OS  string `json:"os"`
	Cap int    `json:"cap,omitempty"`
	// Chaos arms the campaign spec's fault plan: workers inherit it and
	// run their shards under it.  Absent, the server's default fleet
	// plan (WithFleetChaos) applies.
	Chaos *ChaosSpec `json:"chaos,omitempty"`
	// TTLMS overrides the server's lease TTL for this campaign.
	TTLMS int64 `json:"ttl_ms,omitempty"`
}

// ExploreRequest asks for a coverage-guided differential fuzzing
// campaign (see internal/explore): chains of catalog calls mutated
// under kernel-state-coverage feedback, every candidate judged by the
// cross-OS differential oracle.
type ExploreRequest struct {
	// OS is the primary (coverage) variant; empty selects win98.
	OS string `json:"os,omitempty"`
	// OSes is the differential-oracle set; empty selects all seven.
	OSes []string `json:"oses,omitempty"`
	// MuTs restricts the chain alphabet; empty selects the cross-OS
	// intersection.
	MuTs []string `json:"muts,omitempty"`
	Seed uint64   `json:"seed,omitempty"`
	// Chains is the candidate budget (default 500, bounded server-side).
	Chains int `json:"chains,omitempty"`
	// MaxLen caps chain length (2-8; default 8).
	MaxLen  int `json:"max_len,omitempty"`
	Workers int `json:"workers,omitempty"`
}

// MaxExploreChains bounds the per-request fuzzing budget so one HTTP
// call cannot monopolize the server.
const MaxExploreChains = 20000

// CrashcheckRequest asks for a bounded crash-consistency sweep (see
// internal/crashsim): every workload in the B3-style bounded set is
// executed against the simulated filesystem's persistence model, each
// crash point's legal post-crash states are enumerated under the OS
// profile's durability policy, and the invariant checker's verdicts are
// compared across profiles.
type CrashcheckRequest struct {
	// OSes is the differential set; empty selects all seven.
	OSes []string `json:"oses,omitempty"`
	Seed uint64   `json:"seed,omitempty"`
	// MaxOps bounds workload chain length (1-3; default 2, B3's seq-2).
	MaxOps int `json:"max_ops,omitempty"`
	// Budget caps the enumerated workload set (bounded server-side).
	Budget  int `json:"budget,omitempty"`
	Workers int `json:"workers,omitempty"`
}

// MaxCrashWorkloads bounds the per-request crash-sweep workload budget.
const MaxCrashWorkloads = 2000

// MaxCrashOps bounds the workload chain length a crashcheck request may
// ask for (the state enumeration is exponential in chain length).
const MaxCrashOps = 3

// ScarcecheckRequest parameterizes POST /api/scarcecheck.
type ScarcecheckRequest struct {
	// OSes is the differential set; empty selects all seven.
	OSes []string `json:"oses,omitempty"`
	// Envs names default scarcity environments; empty selects the full
	// matrix.
	Envs []string `json:"envs,omitempty"`
	Seed uint64   `json:"seed,omitempty"`
	// Budget caps the MuT union (bounded server-side).
	Budget  int `json:"budget,omitempty"`
	Workers int `json:"workers,omitempty"`
}

// MaxScarceMuTs bounds the per-request scarcity-sweep MuT budget (each
// MuT costs environments x OSes machine boots).
const MaxScarceMuTs = 500

// HinderRequest parameterizes POST /api/hinder.
type HinderRequest struct {
	OS string `json:"os"`
}

// CaseRequest asks for one identified test case (the paper's
// single-test-program mode; Listing 1 is {"os":"win98",
// "mut":"GetThreadContext","case":[3,0]} with the pseudo-handle and NULL
// value indices).
type CaseRequest struct {
	OS   string `json:"os"`
	MuT  string `json:"mut"`
	Case []int  `json:"case"`
	Wide bool   `json:"wide,omitempty"`
}

// CaseResponse reports the CRASH classification of a single case.
type CaseResponse struct {
	Class string `json:"class"`
}

// MuTInfo describes one catalog entry on the wire.
type MuTInfo struct {
	Name    string   `json:"name"`
	API     string   `json:"api"`
	Group   string   `json:"group"`
	Params  []string `json:"params"`
	HasWide bool     `json:"has_wide,omitempty"`
}

// SummaryResponse is a Table 1 row.
type SummaryResponse struct {
	OS                string  `json:"os"`
	SysTested         int     `json:"sys_tested"`
	SysCatastrophic   int     `json:"sys_catastrophic"`
	SysAbortPct       float64 `json:"sys_abort_pct"`
	SysRestartPct     float64 `json:"sys_restart_pct"`
	CLibTested        int     `json:"clib_tested"`
	CLibCatastrophic  int     `json:"clib_catastrophic"`
	CLibAbortPct      float64 `json:"clib_abort_pct"`
	CLibRestartPct    float64 `json:"clib_restart_pct"`
	TotalCatastrophic int     `json:"total_catastrophic"`
	CasesRun          int     `json:"cases_run"`
	Reboots           int     `json:"reboots"`
}

// EventsResponse carries the recent-events ring content.
type EventsResponse struct {
	// Seen is the total number of events the server has observed.
	Seen uint64 `json:"seen"`
	// Events holds up to the requested number of most recent records,
	// oldest first.
	Events []telemetry.TraceRecord `json:"events"`
}

// SpansResponse carries the flight-recorder ring content.
type SpansResponse struct {
	// Trace is the recorder's current trace ID (set while a fleet
	// campaign is coordinated; empty otherwise).
	Trace string `json:"trace,omitempty"`
	// Seen is the total number of spans recorded since startup.
	Seen uint64 `json:"seen"`
	// Spans holds up to the requested number of most recent spans,
	// oldest first.
	Spans []span.Record `json:"spans"`
}

// DefaultEventRing is how many recent trace events the server retains.
const DefaultEventRing = 4096

// DefaultMaxCampaigns bounds how many heavy requests (campaigns,
// fuzzing runs, summaries) the server executes at once; excess load is
// shed with 429 + Retry-After instead of queueing until collapse.
const DefaultMaxCampaigns = 8

// DefaultRetryAfter is the Retry-After hint, in seconds, sent with a
// load-shedding 429.
const DefaultRetryAfter = 5

// Server is the Ballista testing service.  The zero value is not usable;
// call NewServer.
type Server struct {
	mux     *http.ServeMux
	handler http.Handler

	metrics *telemetry.Metrics
	ring    *telemetry.Ring
	extra   core.Observer
	log     *telemetry.Logger

	// sem caps in-flight heavy requests (graceful degradation).
	sem chan struct{}
	// reqTimeout bounds each heavy request's campaign context; 0 means
	// only the client's own disconnect cancels it.
	reqTimeout time.Duration
	// chaosStats accumulates injection counters across every campaign
	// the server runs with a chaos plan; exported at /metrics.
	chaosStats *chaos.Stats
	// spans is the flight recorder threaded through every campaign the
	// server runs; its ring serves /api/spans and its per-phase stats
	// surface at /metrics as ballista_span_*.
	spans *span.Recorder

	// fleetTTL is the default lease TTL for fleet campaigns; fleetChaos
	// the default fault plan for fleet campaigns without their own.
	fleetTTL   time.Duration
	fleetChaos *chaos.Plan
	// fleetMu guards the single active fleet coordinator, whose handler
	// serves /fleet/v1/ while a campaign is in flight.
	fleetMu    sync.Mutex
	fleetCoord *fleet.Coordinator

	// store, when set, is the content-addressed result cache threaded
	// through every campaign the server runs; its counters surface at
	// /metrics as ballista_store_* and on GET /api/status.
	store *store.Store
	// queue is the multi-tenant campaign queue (always present); its
	// journal, when configured, makes accepted campaigns survive
	// restarts.
	queue        *queue
	queueJournal *QueueJournal
}

// ServerOption configures NewServer.
type ServerOption func(*Server)

// WithLogger routes server logs (including JSON-encode failures) to lg.
func WithLogger(lg *telemetry.Logger) ServerOption {
	return func(s *Server) { s.log = lg }
}

// WithCampaignObserver attaches an extra observer (e.g. a persistent
// trace writer) to every campaign the server runs, alongside the
// built-in metrics registry and event ring.
func WithCampaignObserver(o core.Observer) ServerOption {
	return func(s *Server) { s.extra = o }
}

// WithCampaignLimit overrides DefaultMaxCampaigns; n <= 0 keeps the
// default.
func WithCampaignLimit(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.sem = make(chan struct{}, n)
		}
	}
}

// WithRequestTimeout bounds every heavy request's campaign context, so
// one runaway campaign cannot hold a server slot forever.
func WithRequestTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.reqTimeout = d }
}

// WithFleetTTL sets the default lease TTL for fleet campaigns the
// server coordinates; d <= 0 keeps the fleet package default.
func WithFleetTTL(d time.Duration) ServerOption {
	return func(s *Server) { s.fleetTTL = d }
}

// WithFleetChaos arms plan on every fleet campaign that does not carry
// its own chaos block.
func WithFleetChaos(plan *chaos.Plan) ServerOption {
	return func(s *Server) { s.fleetChaos = plan }
}

// WithSpanRecorder replaces the server's built-in ring-only flight
// recorder (e.g. with one that also streams JSONL to disk or writes
// crash flight dumps).  The server closes neither; the caller owns rec.
func WithSpanRecorder(rec *span.Recorder) ServerOption {
	return func(s *Server) { s.spans = rec }
}

// WithStore threads a content-addressed result cache through every
// campaign the server runs.  The caller owns the store and closes it
// after the server shuts down.
func WithStore(st *store.Store) ServerOption {
	return func(s *Server) { s.store = st }
}

// WithQueueJournal makes the campaign queue persistent: qj's replayed
// records rebuild history and re-enqueue acknowledged-but-unfinished
// campaigns, and every subsequent submission/outcome appends to it.
// Server.Close closes the journal.
func WithQueueJournal(qj *QueueJournal) ServerOption {
	return func(s *Server) { s.queueJournal = qj }
}

// WithTenantQuota bounds one tenant's active (queued + running)
// campaigns; n <= 0 keeps DefaultTenantQuota.
func WithTenantQuota(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.queue.quota = n
		}
	}
}

// WithQueueExecutors sets how many queued campaigns execute at once
// (default 1: strict priority order).
func WithQueueExecutors(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.queue.executors = n
		}
	}
}

// NewServer builds the service with all routes installed.
func NewServer(opts ...ServerOption) *Server {
	s := &Server{
		mux:        http.NewServeMux(),
		metrics:    telemetry.NewMetrics(),
		ring:       telemetry.NewRing(DefaultEventRing),
		sem:        make(chan struct{}, DefaultMaxCampaigns),
		chaosStats: chaos.NewStats(),
		queue:      newQueue(0, 0),
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.log == nil {
		s.log = telemetry.NewLogger(nil, "ballistad")
	}
	if s.spans == nil {
		s.spans = span.New(span.Options{})
	}
	s.metrics.SetChaosStats(s.chaosStats)
	s.metrics.SetSpanRecorder(s.spans)
	s.metrics.SetQueueStats(s.queue.stats)
	if s.store != nil {
		s.metrics.SetStore(s.store)
	}
	if s.queueJournal != nil {
		s.resumeQueue()
	}
	s.mux.HandleFunc("GET /api/oses", s.handleOSes)
	s.mux.HandleFunc("GET /api/muts", s.handleMuTs)
	s.mux.HandleFunc("POST /api/campaign", s.handleCampaign)
	s.mux.HandleFunc("POST /api/explore", s.handleExplore)
	s.mux.HandleFunc("POST /api/crashcheck", s.handleCrashcheck)
	s.mux.HandleFunc("POST /api/scarcecheck", s.handleScarcecheck)
	s.mux.HandleFunc("POST /api/hinder", s.handleHinder)
	s.mux.HandleFunc("POST /api/case", s.handleCase)
	s.mux.HandleFunc("GET /api/summary", s.handleSummary)
	s.mux.HandleFunc("GET /api/events", s.handleEvents)
	s.mux.HandleFunc("GET /api/spans", s.handleSpans)
	s.mux.HandleFunc("GET /api/status", s.handleStatus)
	s.mux.HandleFunc("POST /api/campaigns", s.handleQueueSubmit)
	s.mux.HandleFunc("GET /api/campaigns", s.handleQueueList)
	s.mux.HandleFunc("GET /api/campaigns/{id}", s.handleQueueGet)
	s.mux.HandleFunc("GET /api/campaigns/{id}/csv", s.handleQueueCSV)
	s.mux.HandleFunc("GET /api/campaigns/{id}/events", s.handleQueueEvents)
	s.mux.HandleFunc("POST /api/fleet/campaign", s.handleFleetCampaign)
	s.mux.HandleFunc("GET /api/fleet/status", s.handleFleetStatus)
	s.mux.Handle("/fleet/v1/", http.HandlerFunc(s.serveFleet))
	s.mux.Handle("GET /metrics", s.metrics.Handler())
	s.handler = s.instrument(s.mux)
	return s
}

// Metrics exposes the server's metrics registry (for a second listener
// or for tests).
func (s *Server) Metrics() *telemetry.Metrics { return s.metrics }

// observer bundles the per-campaign telemetry sinks.
func (s *Server) observer() core.Observer {
	if s.extra != nil {
		return telemetry.Multi(s.metrics, s.ring, s.extra)
	}
	return telemetry.Multi(s.metrics, s.ring)
}

// acquire claims a heavy-request slot, shedding load with 429 +
// Retry-After when the server is at campaign capacity.  The caller must
// release() after the campaign finishes if acquire returned true.
func (s *Server) acquire(w http.ResponseWriter) bool {
	select {
	case s.sem <- struct{}{}:
		return true
	default:
		w.Header().Set("Retry-After", strconv.Itoa(DefaultRetryAfter))
		s.httpError(w, http.StatusTooManyRequests,
			fmt.Sprintf("server at campaign capacity (%d in flight); retry later", cap(s.sem)))
		return false
	}
}

func (s *Server) release() { <-s.sem }

// campaignCtx derives the context a heavy request's campaign runs under:
// the client's own, bounded by the server's request timeout when one is
// configured.
func (s *Server) campaignCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.reqTimeout > 0 {
		return context.WithTimeout(r.Context(), s.reqTimeout)
	}
	return r.Context(), func() {}
}

// statusRecorder captures the status code written by a handler.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so handlers that hold the
// connection after responding (the fleet drain grace) can push the
// completed body to the client first.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps the mux with request-count, latency and in-flight
// accounting.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.AddInFlight(1)
		defer s.metrics.AddInFlight(-1)
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sr, r)
		s.metrics.ObserveHTTP(r.Method, r.URL.Path, sr.status, time.Since(start))
	})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	n := 100
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed <= 0 {
			s.httpError(w, http.StatusBadRequest, "bad n")
			return
		}
		n = parsed
	}
	events := s.ring.Last(n)
	if events == nil {
		events = []telemetry.TraceRecord{}
	}
	s.writeJSON(w, http.StatusOK, EventsResponse{Seen: s.ring.Seen(), Events: events})
}

func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	n := 100
	for _, key := range []string{"n", "limit"} { // ?limit= is the documented alias
		if v := r.URL.Query().Get(key); v != "" {
			parsed, err := strconv.Atoi(v)
			if err != nil || parsed <= 0 {
				s.httpError(w, http.StatusBadRequest, "bad "+key)
				return
			}
			n = parsed
		}
	}
	spans := s.spans.LastFiltered(n, r.URL.Query().Get("phase"))
	if spans == nil {
		spans = []span.Record{}
	}
	s.writeJSON(w, http.StatusOK, SpansResponse{
		Trace: s.spans.Trace(), Seen: s.spans.Seen(), Spans: spans,
	})
}

func (s *Server) handleOSes(w http.ResponseWriter, _ *http.Request) {
	names := make([]string, 0, 7)
	for _, o := range ballista.AllOSes() {
		names = append(names, o.WireName())
	}
	s.writeJSON(w, http.StatusOK, names)
}

func (s *Server) handleMuTs(w http.ResponseWriter, r *http.Request) {
	o, ok := parseOS(r.URL.Query().Get("os"))
	if !ok {
		s.httpError(w, http.StatusBadRequest, "unknown or missing os")
		return
	}
	var out []MuTInfo
	for _, m := range catalog.MuTsFor(o) {
		out = append(out, MuTInfo{
			Name: m.Name, API: m.API.String(), Group: m.Group.String(),
			Params: m.Params, HasWide: m.HasWide,
		})
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	var req CampaignRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	o, ok := parseOS(req.OS)
	if !ok {
		s.httpError(w, http.StatusBadRequest, "unknown os")
		return
	}
	opts := []ballista.Option{ballista.WithObserver(s.observer()), ballista.WithSpans(s.spans)}
	if s.store != nil {
		opts = append(opts, ballista.WithStore(s.store))
	}
	if req.Cap > 0 {
		opts = append(opts, ballista.WithCap(req.Cap))
	}
	if req.Isolated {
		opts = append(opts, ballista.WithIsolation())
	}
	if req.Chaos != nil {
		plan, err := req.Chaos.plan()
		if err != nil {
			s.httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		opts = append(opts,
			ballista.WithChaos(plan),
			ballista.WithChaosStats(s.chaosStats))
		if req.Chaos.CaseDeadlineMS > 0 {
			opts = append(opts, ballista.WithCaseDeadline(time.Duration(req.Chaos.CaseDeadlineMS)*time.Millisecond))
		}
	}
	if !s.acquire(w) {
		return
	}
	defer s.release()
	ctx, cancel := s.campaignCtx(r)
	defer cancel()
	if req.MuT == "*" {
		s.handleFarmCampaign(ctx, w, o, req, opts)
		return
	}
	m, ok := mutFor(o, req.MuT)
	if !ok {
		s.httpError(w, http.StatusNotFound, fmt.Sprintf("%q is not tested on %s", req.MuT, o))
		return
	}
	res, err := ballista.NewRunner(o, opts...).RunMuT(ctx, m, req.Wide)
	if err != nil {
		s.httpError(w, campaignErrStatus(err), err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, campaignRow(o, res))
}

// handleExplore runs one bounded fuzzing campaign and returns the full
// deterministic report.  Chain events stream into the server's metrics
// registry and event ring as the campaign runs.
func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	var req ExploreRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.OS == "" {
		req.OS = "win98"
	}
	primary, ok := parseOS(req.OS)
	if !ok {
		s.httpError(w, http.StatusBadRequest, "unknown os")
		return
	}
	var oses []ballista.OS
	for _, name := range req.OSes {
		o, ok := parseOS(name)
		if !ok {
			s.httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown os %q in oses", name))
			return
		}
		oses = append(oses, o)
	}
	if req.Chains <= 0 {
		req.Chains = 500
	}
	if req.Chains > MaxExploreChains {
		s.httpError(w, http.StatusBadRequest,
			fmt.Sprintf("chains %d exceeds the server bound %d", req.Chains, MaxExploreChains))
		return
	}
	if req.Workers < 0 {
		s.httpError(w, http.StatusBadRequest, "bad workers")
		return
	}
	cfg := ballista.ExploreConfig{
		Primary: primary, OSes: oses, MuTs: req.MuTs,
		Seed: req.Seed, Budget: req.Chains, MaxLen: req.MaxLen,
		Workers: req.Workers, Spans: s.spans,
	}
	if co, ok := s.observer().(core.ChainObserver); ok {
		cfg.Observer = co
	}
	if !s.acquire(w) {
		return
	}
	defer s.release()
	ctx, cancel := s.campaignCtx(r)
	defer cancel()
	rep, err := ballista.Explore(ctx, cfg)
	if err != nil {
		status := campaignErrStatus(err)
		if strings.Contains(err.Error(), "is not tested on") ||
			strings.Contains(err.Error(), "empty alphabet") {
			status = http.StatusBadRequest
		}
		s.httpError(w, status, err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, rep)
}

// handleCrashcheck runs one bounded crash-consistency sweep and returns
// the full deterministic report.  Per-workload crash events stream into
// the server's metrics registry (ballista_crash_*) as the sweep runs.
func (s *Server) handleCrashcheck(w http.ResponseWriter, r *http.Request) {
	var req CrashcheckRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	var oses []ballista.OS
	for _, name := range req.OSes {
		o, ok := parseOS(name)
		if !ok {
			s.httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown os %q in oses", name))
			return
		}
		oses = append(oses, o)
	}
	if req.MaxOps < 0 || req.MaxOps > MaxCrashOps {
		s.httpError(w, http.StatusBadRequest,
			fmt.Sprintf("max_ops %d exceeds the server bound %d", req.MaxOps, MaxCrashOps))
		return
	}
	if req.Budget < 0 || req.Budget > MaxCrashWorkloads {
		s.httpError(w, http.StatusBadRequest,
			fmt.Sprintf("budget %d exceeds the server bound %d", req.Budget, MaxCrashWorkloads))
		return
	}
	if req.Budget == 0 {
		// The exhaustive seq-3 set outruns the request bound; cap it so an
		// unbudgeted request cannot monopolize the slot.  The default
		// seq-2 set (156 workloads) fits under the cap untouched.
		req.Budget = MaxCrashWorkloads
	}
	if req.Workers < 0 {
		s.httpError(w, http.StatusBadRequest, "bad workers")
		return
	}
	cfg := ballista.CrashConfig{
		OSes: oses, Seed: req.Seed, MaxOps: req.MaxOps,
		Budget: req.Budget, Workers: req.Workers,
		Observer: s.observer(), Spans: s.spans,
	}
	if !s.acquire(w) {
		return
	}
	defer s.release()
	ctx, cancel := s.campaignCtx(r)
	defer cancel()
	rep, err := ballista.CrashSweep(ctx, cfg)
	if err != nil {
		s.httpError(w, campaignErrStatus(err), err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, rep)
}

// handleScarcecheck runs one bounded resource-scarcity sweep and
// returns the full deterministic report.  Per-item scarce events stream
// into the server's metrics registry (ballista_scarce_*) as the sweep
// runs.
func (s *Server) handleScarcecheck(w http.ResponseWriter, r *http.Request) {
	var req ScarcecheckRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	var oses []ballista.OS
	for _, name := range req.OSes {
		o, ok := parseOS(name)
		if !ok {
			s.httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown os %q in oses", name))
			return
		}
		oses = append(oses, o)
	}
	var envs []ballista.ScarceEnv
	for _, name := range req.Envs {
		e, err := ballista.ParseScarceEnv(name)
		if err != nil {
			s.httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		envs = append(envs, e)
	}
	if req.Budget < 0 || req.Budget > MaxScarceMuTs {
		s.httpError(w, http.StatusBadRequest,
			fmt.Sprintf("budget %d exceeds the server bound %d", req.Budget, MaxScarceMuTs))
		return
	}
	if req.Budget == 0 {
		// An unbudgeted request must not monopolize the heavy slot: every
		// MuT in the union costs environments x OSes machine boots.
		req.Budget = MaxScarceMuTs
	}
	if req.Workers < 0 {
		s.httpError(w, http.StatusBadRequest, "bad workers")
		return
	}
	cfg := ballista.ScarceConfig{
		OSes: oses, Envs: envs, Seed: req.Seed,
		Budget: req.Budget, Workers: req.Workers,
		Observer: s.observer(), Spans: s.spans,
	}
	if !s.acquire(w) {
		return
	}
	defer s.release()
	ctx, cancel := s.campaignCtx(r)
	defer cancel()
	rep, err := ballista.ScarceSweep(ctx, cfg)
	if err != nil {
		s.httpError(w, campaignErrStatus(err), err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, rep)
}

// handleHinder runs the Hindering-failure oracle (wrong error codes)
// for one OS and returns the probe results.
func (s *Server) handleHinder(w http.ResponseWriter, r *http.Request) {
	var req HinderRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	o, ok := parseOS(req.OS)
	if !ok {
		s.httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown os %q", req.OS))
		return
	}
	if !s.acquire(w) {
		return
	}
	defer s.release()
	results, err := ballista.AuditHindering(o)
	if err != nil {
		s.httpError(w, campaignErrStatus(err), err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, results)
}

// handleFarmCampaign runs the full catalog for one OS across a farm of
// parallel workers and returns the merged, catalog-ordered rows.  The
// caller holds the heavy-request slot and owns ctx.
func (s *Server) handleFarmCampaign(ctx context.Context, w http.ResponseWriter, o ballista.OS, req CampaignRequest, opts []ballista.Option) {
	if req.Workers < 0 {
		s.httpError(w, http.StatusBadRequest, "bad workers")
		return
	}
	res, err := ballista.RunFarm(ctx, o, ballista.FarmConfig{Workers: req.Workers}, opts...)
	if err != nil {
		s.httpError(w, campaignErrStatus(err), err.Error())
		return
	}
	out := FarmCampaignResponse{
		OS: o.String(), Workers: req.Workers,
		MuTs: len(res.Results), CasesRun: res.CasesRun, Reboots: res.Reboots,
		Catastrophic: res.CatastrophicMuTs(),
		Results:      make([]CampaignResponse, 0, len(res.Results)),
	}
	for _, mr := range res.Results {
		out.Results = append(out.Results, campaignRow(o, mr))
	}
	s.writeJSON(w, http.StatusOK, out)
}

// handleFleetCampaign turns the server into a fleet coordinator for one
// distributed full-catalog campaign and blocks (holding a heavy slot)
// until joined workers drain the shard catalog.  The merged rows are
// byte-identical to what /api/campaign with mut "*" computes in-process.
func (s *Server) handleFleetCampaign(w http.ResponseWriter, r *http.Request) {
	var req FleetCampaignRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	o, ok := parseOS(req.OS)
	if !ok {
		s.httpError(w, http.StatusBadRequest, "unknown os")
		return
	}
	plan := s.fleetChaos
	if req.Chaos != nil {
		p, err := req.Chaos.plan()
		if err != nil {
			s.httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		plan = p
	}
	spec := fleet.CampaignSpec{Kind: fleet.KindFarm, OS: o.WireName(), Cap: req.Cap, Chaos: plan}
	if req.Chaos != nil && req.Chaos.CaseDeadlineMS > 0 {
		spec.CaseDeadlineMS = int64(req.Chaos.CaseDeadlineMS)
	}
	ttl := s.fleetTTL
	if req.TTLMS > 0 {
		ttl = time.Duration(req.TTLMS) * time.Millisecond
	}
	cfg := fleet.Config{Spec: spec, TTL: ttl, ChaosStats: s.chaosStats, Spans: s.spans, Log: s.log}
	if fo, ok := s.observer().(core.FleetObserver); ok {
		cfg.Observer = fo
	}
	coord, err := fleet.New(cfg)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if !s.acquire(w) {
		return
	}
	defer s.release()
	s.fleetMu.Lock()
	if s.fleetCoord != nil {
		active := s.fleetCoord.ID()
		s.fleetMu.Unlock()
		// Tell the queued client which campaign holds the slot and when
		// to come back, so it can back off intelligently.
		w.Header().Set("Retry-After", strconv.Itoa(DefaultRetryAfter))
		s.writeJSON(w, http.StatusConflict, map[string]string{
			"error":           "a fleet campaign is already active",
			"active_campaign": active,
		})
		return
	}
	s.fleetCoord = coord
	s.fleetMu.Unlock()
	defer func() {
		s.fleetMu.Lock()
		s.fleetCoord = nil
		s.fleetMu.Unlock()
		coord.Close()
	}()
	ctx, cancel := s.campaignCtx(r)
	defer cancel()
	res, err := coord.Wait(ctx)
	if err != nil {
		s.httpError(w, campaignErrStatus(err), err.Error())
		return
	}
	out := FarmCampaignResponse{
		OS: o.String(), Workers: coord.WorkersSeen(),
		MuTs: len(res.Results), CasesRun: res.CasesRun, Reboots: res.Reboots,
		Catastrophic: res.CatastrophicMuTs(),
		Results:      make([]CampaignResponse, 0, len(res.Results)),
	}
	for _, mr := range res.Results {
		out.Results = append(out.Results, campaignRow(o, mr))
	}
	s.writeJSON(w, http.StatusOK, out)
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	// Drain grace: the response is out, but idle workers only poll for
	// completion every half heartbeat.  Keep the coordinator registered
	// a little longer so they observe Done and exit instead of spinning
	// on 503s; a client that has hung up releases the slot immediately.
	drainTTL := ttl
	if drainTTL <= 0 {
		drainTTL = 15 * time.Second
	}
	drain := drainTTL / 3
	if drain < 250*time.Millisecond {
		drain = 250 * time.Millisecond
	}
	select {
	case <-r.Context().Done():
	case <-time.After(drain):
	}
}

func (s *Server) handleFleetStatus(w http.ResponseWriter, _ *http.Request) {
	s.fleetMu.Lock()
	coord := s.fleetCoord
	s.fleetMu.Unlock()
	if coord == nil {
		s.httpError(w, http.StatusNotFound, "no fleet campaign active")
		return
	}
	s.writeJSON(w, http.StatusOK, coord.Status())
}

// serveFleet delegates worker-fabric RPCs to the active coordinator.
// Before a campaign is posted the fabric answers 503, which the fleet
// client treats as retryable — workers may join early and back off
// until a campaign arrives.
func (s *Server) serveFleet(w http.ResponseWriter, r *http.Request) {
	s.fleetMu.Lock()
	coord := s.fleetCoord
	s.fleetMu.Unlock()
	if coord == nil {
		s.httpError(w, http.StatusServiceUnavailable, "no fleet campaign active")
		return
	}
	coord.Handler().ServeHTTP(w, r)
}

// campaignRow flattens one MuT's result into the wire row.
func campaignRow(o ballista.OS, res *core.MuTResult) CampaignResponse {
	return CampaignResponse{
		OS: o.String(), MuT: res.Name(), Group: res.MuT.Group.String(),
		Cases:        res.Executed(),
		Clean:        res.Count(core.RawClean),
		ErrorReturn:  res.Count(core.RawError),
		Abort:        res.Count(core.RawAbort),
		Restart:      res.Count(core.RawRestart),
		Catastrophic: res.Count(core.RawCatastrophic),
		Skip:         res.Count(core.RawSkip),
		AbortRate:    res.AbortRate(),
		RestartRate:  res.RestartRate(),
		Incomplete:   res.Incomplete,
	}
}

// campaignErrStatus maps a campaign failure to an HTTP status: a
// cancelled context (client gone, server draining) is 503, anything
// else a plain 500.
func campaignErrStatus(err error) int {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

func (s *Server) handleCase(w http.ResponseWriter, r *http.Request) {
	var req CaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	o, ok := parseOS(req.OS)
	if !ok {
		s.httpError(w, http.StatusBadRequest, "unknown os")
		return
	}
	m, ok := mutFor(o, req.MuT)
	if !ok {
		s.httpError(w, http.StatusNotFound, fmt.Sprintf("%q is not tested on %s", req.MuT, o))
		return
	}
	if len(req.Case) != len(m.Params) {
		s.httpError(w, http.StatusBadRequest,
			fmt.Sprintf("%s takes %d parameters, case has %d", m.Name, len(m.Params), len(req.Case)))
		return
	}
	runner := ballista.NewRunner(o, ballista.WithIsolation(), ballista.WithObserver(s.observer()))
	cls, err := runner.RunCase(m, core.Case(req.Case), req.Wide)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, CaseResponse{Class: cls.String()})
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	o, ok := parseOS(r.URL.Query().Get("os"))
	if !ok {
		s.httpError(w, http.StatusBadRequest, "unknown or missing os")
		return
	}
	cap := 300
	if v := r.URL.Query().Get("cap"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			s.httpError(w, http.StatusBadRequest, "bad cap")
			return
		}
		cap = n
	}
	workers := 1
	if v := r.URL.Query().Get("workers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.httpError(w, http.StatusBadRequest, "bad workers")
			return
		}
		workers = n
	}
	opts := []ballista.Option{ballista.WithCap(cap), ballista.WithObserver(s.observer())}
	if s.store != nil {
		opts = append(opts, ballista.WithStore(s.store))
	}
	if !s.acquire(w) {
		return
	}
	defer s.release()
	ctx, cancel := s.campaignCtx(r)
	defer cancel()
	var res *ballista.Result
	var err error
	if workers == 1 {
		res, err = ballista.RunContext(ctx, o, opts...)
	} else {
		res, err = ballista.RunFarm(ctx, o, ballista.FarmConfig{Workers: workers}, opts...)
	}
	if err != nil {
		s.httpError(w, campaignErrStatus(err), err.Error())
		return
	}
	sum := report.Summarize(o, res)
	s.writeJSON(w, http.StatusOK, SummaryResponse{
		OS:                o.String(),
		SysTested:         sum.SysTested,
		SysCatastrophic:   sum.SysCatastrophic,
		SysAbortPct:       sum.SysAbortPct,
		SysRestartPct:     sum.SysRestartPct,
		CLibTested:        sum.CLibTested,
		CLibCatastrophic:  sum.CLibCatastrophic,
		CLibAbortPct:      sum.CLibAbortPct,
		CLibRestartPct:    sum.CLibRestartPct,
		TotalCatastrophic: sum.TotalCatastrophic,
		CasesRun:          res.CasesRun,
		Reboots:           res.Reboots,
	})
}

func parseOS(name string) (ballista.OS, bool) {
	return osprofile.Parse(name)
}

func mutFor(o ballista.OS, name string) (catalog.MuT, bool) {
	for _, m := range catalog.MuTsFor(o) {
		if m.Name == name {
			return m, true
		}
	}
	return catalog.MuT{}, false
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The status line is gone; all that is left is diagnosis.
		s.log.Errorf("encoding %T response: %v", v, err)
	}
}

func (s *Server) httpError(w http.ResponseWriter, status int, msg string) {
	s.writeJSON(w, status, map[string]string{"error": msg})
}
