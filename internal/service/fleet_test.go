package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"ballista"
)

// TestFleetCampaignEndpoint drives the distributed path end to end: the
// server coordinates at /fleet/v1/, in-process -join workers execute
// the shards, and the merged rows match the in-process farm run row for
// row.
func TestFleetCampaignEndpoint(t *testing.T) {
	ts := testServer(t)

	var farmResp FarmCampaignResponse
	if code := postJSON(t, ts.URL+"/api/campaign",
		CampaignRequest{OS: "winnt", MuT: "*", Cap: 60, Workers: 1}, &farmResp); code != http.StatusOK {
		t.Fatalf("farm baseline status %d", code)
	}

	// Workers join before the campaign is posted: the fabric's 503 is
	// retryable, so they back off until the coordinator appears.
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	werrs := make([]error, 2)
	for i := range werrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			werrs[i] = ballista.RunFleetWorker(ctx, ballista.FleetWorkerConfig{
				URL: ts.URL, Name: fmt.Sprintf("svc-w%d", i), Slots: 2,
			})
		}(i)
	}

	var fleetResp FarmCampaignResponse
	code := postJSON(t, ts.URL+"/api/fleet/campaign",
		FleetCampaignRequest{OS: "winnt", Cap: 60}, &fleetResp)
	// The campaign is drained; workers still polling would spin on the
	// now-empty fabric, so release them before asserting.
	cancel()
	wg.Wait()
	if code != http.StatusOK {
		t.Fatalf("fleet campaign status %d: %+v", code, fleetResp)
	}
	for i, err := range werrs {
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("worker %d: %v", i, err)
		}
	}

	if fleetResp.Workers == 0 || fleetResp.Workers > 2 {
		t.Errorf("fleet response reports %d workers", fleetResp.Workers)
	}
	if fleetResp.MuTs != farmResp.MuTs || fleetResp.CasesRun != farmResp.CasesRun ||
		fleetResp.Reboots != farmResp.Reboots {
		t.Fatalf("fleet headline %+v != farm headline %+v", fleetResp, farmResp)
	}
	if len(fleetResp.Results) != len(farmResp.Results) {
		t.Fatalf("%d fleet rows, %d farm rows", len(fleetResp.Results), len(farmResp.Results))
	}
	for i := range farmResp.Results {
		if fleetResp.Results[i] != farmResp.Results[i] {
			t.Errorf("row %d differs: fleet %+v vs farm %+v",
				i, fleetResp.Results[i], farmResp.Results[i])
		}
	}
}

// TestFleetEndpointsIdle: with no campaign active the status endpoint
// 404s and the worker fabric sheds with a retryable 503.
func TestFleetEndpointsIdle(t *testing.T) {
	ts := testServer(t)
	var errResp map[string]string
	if code := getJSON(t, ts.URL+"/api/fleet/status", &errResp); code != http.StatusNotFound {
		t.Errorf("idle status: %d, want 404", code)
	}
	if code := postJSON(t, ts.URL+"/fleet/v1/join", map[string]string{"name": "w"}, &errResp); code != http.StatusServiceUnavailable {
		t.Errorf("idle fabric join: %d, want 503", code)
	}
}

// TestFleetCampaignBadRequest covers spec validation failures.
func TestFleetCampaignBadRequest(t *testing.T) {
	ts := testServer(t)
	var errResp map[string]string
	if code := postJSON(t, ts.URL+"/api/fleet/campaign",
		FleetCampaignRequest{OS: "plan9"}, &errResp); code != http.StatusBadRequest {
		t.Errorf("unknown os: %d, want 400", code)
	}
	if code := postJSON(t, ts.URL+"/api/fleet/campaign",
		FleetCampaignRequest{OS: "winnt", Chaos: &ChaosSpec{Preset: "nope", Seed: 1}}, &errResp); code != http.StatusBadRequest {
		t.Errorf("bad chaos preset: %d, want 400", code)
	}
}
