package service

import (
	"net/http"
	"testing"
)

// TestFarmCampaignEndpoint drives the full-catalog parallel path: POST
// /api/campaign with mut "*" shards the OS's whole catalog across a
// worker pool and returns the merged catalog-ordered rows.
func TestFarmCampaignEndpoint(t *testing.T) {
	ts := testServer(t)
	var resp FarmCampaignResponse
	code := postJSON(t, ts.URL+"/api/campaign",
		CampaignRequest{OS: "winnt", MuT: "*", Cap: 60, Workers: 4}, &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.Workers != 4 || resp.MuTs == 0 || resp.CasesRun == 0 {
		t.Fatalf("farm response headline: %+v", resp)
	}
	if len(resp.Results) != resp.MuTs {
		t.Fatalf("%d rows for %d MuTs", len(resp.Results), resp.MuTs)
	}
	// Rows arrive in stable catalog order with per-row accounting.
	var cases int
	for i, row := range resp.Results {
		if row.MuT == "" {
			t.Fatalf("row %d has no MuT name", i)
		}
		cases += row.Cases
	}
	if cases != resp.CasesRun {
		t.Errorf("rows sum to %d cases, farm reports %d", cases, resp.CasesRun)
	}
}

// TestFarmCampaignDeterministicAcrossWorkers: the service's farm path
// inherits the scheduler's determinism — worker count cannot change the
// aggregate numbers a client sees.
func TestFarmCampaignDeterministicAcrossWorkers(t *testing.T) {
	ts := testServer(t)
	run := func(workers int) FarmCampaignResponse {
		var resp FarmCampaignResponse
		if code := postJSON(t, ts.URL+"/api/campaign",
			CampaignRequest{OS: "winnt", MuT: "*", Cap: 60, Workers: workers}, &resp); code != http.StatusOK {
			t.Fatalf("workers=%d status %d", workers, code)
		}
		return resp
	}
	one, eight := run(1), run(8)
	if one.CasesRun != eight.CasesRun || one.Reboots != eight.Reboots || one.MuTs != eight.MuTs {
		t.Fatalf("1-worker %+v != 8-worker %+v", one, eight)
	}
	for i := range one.Results {
		a, b := one.Results[i], eight.Results[i]
		if a != b {
			t.Errorf("row %d differs between worker counts: %+v vs %+v", i, a, b)
		}
	}
}

func TestFarmCampaignBadWorkers(t *testing.T) {
	ts := testServer(t)
	var errResp map[string]string
	code := postJSON(t, ts.URL+"/api/campaign",
		CampaignRequest{OS: "winnt", MuT: "*", Cap: 60, Workers: -1}, &errResp)
	if code != http.StatusBadRequest {
		t.Errorf("negative workers: status %d, want 400", code)
	}
}
