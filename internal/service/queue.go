// The multi-tenant campaign queue: ballistad's growth from "one active
// campaign per request" into a platform.  Submissions land in a
// persistent prioritized queue (per-tenant quotas, FIFO within
// priority), are journaled before they are acknowledged — a restarted
// server re-enqueues everything accepted but unfinished — and execute
// on a bounded dispatcher with the farm (in-process) or fleet
// (distributed) backend.  Progress streams over SSE from a per-campaign
// event log; terminal results and their CSV artifacts persist in the
// journal and serve from the history endpoints.
package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"ballista"
	"ballista/internal/core"
	"ballista/internal/fleet"
	"ballista/internal/osprofile"
	"ballista/internal/report"
	"ballista/internal/telemetry"
	"ballista/internal/telemetry/span"
)

// Campaign lifecycle states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// DefaultTenantQuota bounds one tenant's active (queued + running)
// campaigns; excess submissions shed with 429 + Retry-After.
const DefaultTenantQuota = 4

// MaxPriority is the top of the priority range (0..MaxPriority, higher
// runs first; FIFO within a priority).
const MaxPriority = 9

// QueueSubmitRequest enqueues one campaign for a tenant.  The embedded
// CampaignRequest fields (os, mut, cap, workers, chaos, ...) describe
// the campaign itself; mut defaults to "*" (the full catalog).
type QueueSubmitRequest struct {
	CampaignRequest
	Tenant   string `json:"tenant,omitempty"`
	Priority int    `json:"priority,omitempty"`
	// Engine selects the execution backend: "farm" (default, in-process
	// workers) or "fleet" (the server coordinates `ballista -join`
	// workers, like POST /api/fleet/campaign).
	Engine string `json:"engine,omitempty"`
}

// QueueSubmitResponse acknowledges an accepted submission.  The journal
// record is fsynced before this response is written.
type QueueSubmitResponse struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Position int    `json:"position"`
}

// CampaignSummary is one queue/history row.
type CampaignSummary struct {
	ID        string     `json:"id"`
	Tenant    string     `json:"tenant"`
	Priority  int        `json:"priority"`
	Engine    string     `json:"engine,omitempty"`
	State     string     `json:"state"`
	OS        string     `json:"os"`
	MuT       string     `json:"mut"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	Error     string     `json:"error,omitempty"`
}

// CampaignDetail is a summary plus the merged result once terminal.
type CampaignDetail struct {
	CampaignSummary
	Result *FarmCampaignResponse `json:"result,omitempty"`
}

// campaign is the queue's internal record.  Immutable identity fields
// are set at submit; mutable state is guarded by the queue mutex.
type campaign struct {
	seq      uint64
	id       string
	tenant   string
	priority int
	engine   string
	req      CampaignRequest

	state     string
	submitted time.Time
	started   time.Time
	finished  time.Time
	err       string
	result    *FarmCampaignResponse
	csv       []byte

	events *eventLog
	qspan  *span.Span // time-in-queue span, ended at dispatch
}

func (c *campaign) terminal() bool {
	return c.state == StateDone || c.state == StateFailed || c.state == StateCanceled
}

func (c *campaign) summary() CampaignSummary {
	out := CampaignSummary{
		ID: c.id, Tenant: c.tenant, Priority: c.priority, Engine: c.engine,
		State: c.state, OS: c.req.OS, MuT: c.req.MuT, Submitted: c.submitted,
		Error: c.err,
	}
	if !c.started.IsZero() {
		t := c.started
		out.Started = &t
	}
	if !c.finished.IsZero() {
		t := c.finished
		out.Finished = &t
	}
	return out
}

// queue is the campaign queue state machine.
type queue struct {
	mu   sync.Mutex
	cond *sync.Cond

	byID map[string]*campaign
	all  []*campaign // submission order

	seq       uint64
	running   int
	executors int
	quota     int

	closed      bool
	dispatching bool
	wg          sync.WaitGroup
	ctx         context.Context
	cancel      context.CancelFunc

	submitted, rejected uint64
	done, failed        uint64
	canceled            uint64
}

func newQueue(executors, quota int) *queue {
	if executors <= 0 {
		executors = 1
	}
	if quota <= 0 {
		quota = DefaultTenantQuota
	}
	q := &queue{
		byID:      make(map[string]*campaign),
		executors: executors,
		quota:     quota,
	}
	q.cond = sync.NewCond(&q.mu)
	q.ctx, q.cancel = context.WithCancel(context.Background())
	return q
}

// activeForTenantLocked counts a tenant's queued + running campaigns
// (the quota domain).
func (q *queue) activeForTenantLocked(tenant string) int {
	n := 0
	for _, c := range q.all {
		if c.tenant == tenant && !c.terminal() {
			n++
		}
	}
	return n
}

func (q *queue) queuedCountLocked() int {
	n := 0
	for _, c := range q.all {
		if c.state == StateQueued {
			n++
		}
	}
	return n
}

// nextRunnableLocked picks the queued campaign that runs next — highest
// priority first, submission order within a priority — or nil when
// nothing is runnable or all executor slots are busy.
func (q *queue) nextRunnableLocked() *campaign {
	if q.running >= q.executors {
		return nil
	}
	var best *campaign
	for _, c := range q.all {
		if c.state != StateQueued {
			continue
		}
		if best == nil || c.priority > best.priority {
			best = c
		}
	}
	return best
}

// stats snapshots the queue for /metrics and /api/status.
func (q *queue) stats() telemetry.QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return telemetry.QueueStats{
		Queued:    q.queuedCountLocked(),
		Running:   q.running,
		Submitted: q.submitted,
		Rejected:  q.rejected,
		Done:      q.done,
		Failed:    q.failed,
		Canceled:  q.canceled,
	}
}

// ---- per-campaign event log (the SSE feed) ----

// queueEvent is one progress record: a state transition, a completed
// shard, or the terminal event.
type queueEvent struct {
	Seq   uint64    `json:"seq"`
	Kind  string    `json:"kind"` // "state", "shard", "done"
	At    time.Time `json:"at"`
	State string    `json:"state,omitempty"`
	Error string    `json:"error,omitempty"`
	// Shard progress (kind "shard").
	MuT    string `json:"mut,omitempty"`
	Shard  int    `json:"shard,omitempty"`
	Worker int    `json:"worker,omitempty"`
	Cases  int    `json:"cases,omitempty"`
	Shards int    `json:"shards_done,omitempty"`
}

// eventLogCap bounds the replay buffer; live subscribers see everything,
// late ones the most recent eventLogCap records.
const eventLogCap = 512

// subChanCap bounds one subscriber's delivery channel; a consumer that
// falls further behind drops progress events (they are advisory — the
// terminal event closes the channel, which cannot be missed).
const subChanCap = 64

type eventLog struct {
	mu     sync.Mutex
	seq    uint64
	buf    []queueEvent
	subs   map[chan queueEvent]struct{}
	closed bool
}

func newEventLog() *eventLog {
	return &eventLog{subs: make(map[chan queueEvent]struct{})}
}

func (el *eventLog) emit(ev queueEvent) {
	el.mu.Lock()
	defer el.mu.Unlock()
	if el.closed {
		return
	}
	el.seq++
	ev.Seq = el.seq
	ev.At = time.Now()
	el.buf = append(el.buf, ev)
	if len(el.buf) > eventLogCap {
		el.buf = el.buf[len(el.buf)-eventLogCap:]
	}
	for ch := range el.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// subscribe returns the replay buffer and a live channel.  The channel
// closes when the log closes (campaign terminal or server shutdown);
// cancel detaches early.
func (el *eventLog) subscribe() (replay []queueEvent, ch chan queueEvent, cancel func()) {
	el.mu.Lock()
	defer el.mu.Unlock()
	replay = append([]queueEvent(nil), el.buf...)
	ch = make(chan queueEvent, subChanCap)
	if el.closed {
		close(ch)
		return replay, ch, func() {}
	}
	el.subs[ch] = struct{}{}
	return replay, ch, func() {
		el.mu.Lock()
		defer el.mu.Unlock()
		if _, ok := el.subs[ch]; ok {
			delete(el.subs, ch)
			close(ch)
		}
	}
}

// close seals the log: subscribers' channels close after any buffered
// events drain.
func (el *eventLog) close() {
	el.mu.Lock()
	defer el.mu.Unlock()
	if el.closed {
		return
	}
	el.closed = true
	for ch := range el.subs {
		close(ch)
	}
	el.subs = make(map[chan queueEvent]struct{})
}

// campaignProgress forwards farm shard completions into the campaign's
// event log (alongside the server-wide observers it is Multi'd with).
type campaignProgress struct {
	c      *campaign
	mu     sync.Mutex
	shards int
}

func (p *campaignProgress) OnMuTStart(core.MuTStartEvent)     {}
func (p *campaignProgress) OnCaseDone(core.CaseEvent)         {}
func (p *campaignProgress) OnReboot(core.RebootEvent)         {}
func (p *campaignProgress) OnCampaignDone(core.CampaignEvent) {}

// OnShardDone implements core.ShardObserver.
func (p *campaignProgress) OnShardDone(ev core.ShardEvent) {
	p.mu.Lock()
	p.shards++
	n := p.shards
	p.mu.Unlock()
	p.c.events.emit(queueEvent{
		Kind: "shard", MuT: ev.MuT, Shard: ev.Shard, Worker: ev.Worker,
		Cases: ev.Cases, Shards: n,
	})
}

// ---- journal (journal-before-acknowledge resume) ----

// queueJournalVersion is the on-disk schema version.
const queueJournalVersion = 1

// queueRecord is one journal line: a submission (written and fsynced
// before the 202 acknowledgement) or a terminal outcome with its
// artifacts.  A submission without a matching terminal record
// re-enqueues on restart.
type queueRecord struct {
	V        int                   `json:"v"`
	Op       string                `json:"op"` // "submit" or "done"
	Seq      uint64                `json:"seq,omitempty"`
	ID       string                `json:"id"`
	Tenant   string                `json:"tenant,omitempty"`
	Priority int                   `json:"priority,omitempty"`
	Engine   string                `json:"engine,omitempty"`
	Req      *CampaignRequest      `json:"req,omitempty"`
	At       time.Time             `json:"at,omitempty"`
	State    string                `json:"state,omitempty"`
	Error    string                `json:"error,omitempty"`
	Result   *FarmCampaignResponse `json:"result,omitempty"`
	CSV      string                `json:"csv,omitempty"`
}

// QueueJournal is the campaign queue's persistence: an append-only
// JSONL file with the checkpoint journals' durability contract (fsync
// per record, torn tail lines skipped on replay).  Open it with
// OpenQueueJournal and hand it to the server via WithQueueJournal.
type QueueJournal struct {
	mu      sync.Mutex
	f       *os.File
	records []queueRecord
}

// OpenQueueJournal replays an existing journal (missing file = fresh
// queue) and opens it for appending.
func OpenQueueJournal(path string) (*QueueJournal, error) {
	qj := &QueueJournal{}
	if err := qj.replay(path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("queue: opening journal: %w", err)
	}
	qj.f = f
	return qj, nil
}

func (qj *QueueJournal) replay(path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("queue: reading journal: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec queueRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			continue // torn write; every complete record stands on its own
		}
		if rec.V != queueJournalVersion {
			return fmt.Errorf("queue: journal version %d (want %d)", rec.V, queueJournalVersion)
		}
		qj.records = append(qj.records, rec)
	}
	if err := sc.Err(); err != nil && !errors.Is(err, io.EOF) {
		return fmt.Errorf("queue: reading journal: %w", err)
	}
	return nil
}

// append journals one record, fsynced; a torn write is
// newline-terminated so the replay skips exactly one line.
func (qj *QueueJournal) append(rec queueRecord) error {
	if qj == nil {
		return nil
	}
	rec.V = queueJournalVersion
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("queue: encoding journal record: %w", err)
	}
	line = append(line, '\n')
	qj.mu.Lock()
	defer qj.mu.Unlock()
	n, werr := qj.f.Write(line)
	if werr != nil {
		if n > 0 && line[n-1] != '\n' {
			qj.f.Write([]byte{'\n'})
		}
		return werr
	}
	return qj.f.Sync()
}

// Close closes the journal file.
func (qj *QueueJournal) Close() error {
	if qj == nil {
		return nil
	}
	return qj.f.Close()
}

// ---- server integration ----

// resumeQueue rebuilds the queue from a replayed journal: terminal
// campaigns restore to history with their artifacts, acknowledged but
// unfinished ones re-enqueue.  Called from NewServer before any request
// can land.
func (s *Server) resumeQueue() {
	q := s.queue
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, rec := range s.queueJournal.records {
		switch rec.Op {
		case "submit":
			if rec.Req == nil {
				continue
			}
			c := &campaign{
				seq: rec.Seq, id: rec.ID, tenant: rec.Tenant,
				priority: rec.Priority, engine: rec.Engine, req: *rec.Req,
				state: StateQueued, submitted: rec.At, events: newEventLog(),
			}
			q.byID[c.id] = c
			q.all = append(q.all, c)
			q.submitted++
			if rec.Seq >= q.seq {
				q.seq = rec.Seq + 1
			}
		case "done":
			c, ok := q.byID[rec.ID]
			if !ok {
				continue
			}
			c.state = rec.State
			c.finished = rec.At
			c.err = rec.Error
			c.result = rec.Result
			c.csv = []byte(rec.CSV)
			c.events.close()
			switch rec.State {
			case StateDone:
				q.done++
			case StateCanceled:
				q.canceled++
			default:
				q.failed++
			}
		}
	}
	if q.queuedCountLocked() > 0 {
		s.ensureDispatcherLocked()
	}
}

// ensureDispatcherLocked starts the dispatcher goroutine if it is not
// already running.  The dispatcher exits when the queue drains, so an
// idle server holds no extra goroutine (the leak checker in the test
// suite enforces this).
func (s *Server) ensureDispatcherLocked() {
	q := s.queue
	if q.dispatching || q.closed {
		return
	}
	q.dispatching = true
	q.wg.Add(1)
	go s.dispatchLoop()
}

// dispatchLoop pops runnable campaigns in (priority desc, submission
// asc) order and runs each on its own goroutine, bounded by the
// executor count.
func (s *Server) dispatchLoop() {
	q := s.queue
	defer q.wg.Done()
	q.mu.Lock()
	for {
		if q.closed {
			q.dispatching = false
			q.mu.Unlock()
			return
		}
		c := q.nextRunnableLocked()
		if c == nil {
			if q.running == 0 && q.queuedCountLocked() == 0 {
				q.dispatching = false
				q.mu.Unlock()
				return
			}
			q.cond.Wait()
			continue
		}
		q.running++
		c.state = StateRunning
		c.started = time.Now()
		c.qspan.End()
		c.qspan = nil
		// Emit before spawning so the "running" transition always precedes
		// the run's own shard events in the SSE stream.
		c.events.emit(queueEvent{Kind: "state", State: StateRunning})
		q.wg.Add(1)
		go s.runQueued(c)
	}
}

// runQueued executes one campaign and records its terminal state.  A
// campaign interrupted by server shutdown reverts to queued without a
// terminal journal record, so a restart re-enqueues it.
func (s *Server) runQueued(c *campaign) {
	q := s.queue
	defer q.wg.Done()
	res, err := s.executeQueued(q.ctx, c)

	q.mu.Lock()
	q.running--
	if err != nil && q.ctx.Err() != nil {
		// Shutdown interrupted the run: back to the queue for resume.
		c.state = StateQueued
		c.started = time.Time{}
		q.cond.Broadcast()
		q.mu.Unlock()
		return
	}
	c.finished = time.Now()
	rec := queueRecord{Op: "done", ID: c.id, At: c.finished}
	if err != nil {
		c.err = err.Error()
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			c.state = StateCanceled
			q.canceled++
		} else {
			c.state = StateFailed
			q.failed++
		}
	} else {
		c.state = StateDone
		q.done++
		c.result = res.summary
		c.csv = res.csv
		rec.Result = res.summary
		rec.CSV = string(res.csv)
	}
	rec.State = c.state
	rec.Error = c.err
	q.cond.Broadcast()
	q.mu.Unlock()

	if jerr := s.queueJournal.append(rec); jerr != nil {
		s.log.Errorf("journaling campaign %s outcome: %v", c.id, jerr)
	}
	c.events.emit(queueEvent{Kind: "state", State: c.state, Error: c.err})
	c.events.emit(queueEvent{Kind: "done", State: c.state, Error: c.err})
	c.events.close()
	s.spans.Instant("queue", c.id, c.state)
}

// queuedArtifacts is a completed campaign's wire summary plus its CSV
// report — the deterministic artifact the warm-cache oracle diffs.
type queuedArtifacts struct {
	summary *FarmCampaignResponse
	csv     []byte
}

// executeQueued runs one campaign under the queue's context with the
// requested backend.
func (s *Server) executeQueued(ctx context.Context, c *campaign) (*queuedArtifacts, error) {
	if s.reqTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.reqTimeout)
		defer cancel()
	}
	o, ok := parseOS(c.req.OS)
	if !ok { // validated at submit; defensive for journal edits
		return nil, fmt.Errorf("unknown os %q", c.req.OS)
	}
	progress := &campaignProgress{c: c}
	obs := telemetry.Multi(s.observer(), progress)

	if c.engine == "fleet" {
		return s.executeQueuedFleet(ctx, c, o, obs)
	}

	opts := []ballista.Option{ballista.WithObserver(obs), ballista.WithSpans(s.spans)}
	if s.store != nil {
		opts = append(opts, ballista.WithStore(s.store))
	}
	if c.req.Cap > 0 {
		opts = append(opts, ballista.WithCap(c.req.Cap))
	}
	if c.req.Isolated {
		opts = append(opts, ballista.WithIsolation())
	}
	if c.req.Chaos != nil {
		plan, err := c.req.Chaos.plan()
		if err != nil {
			return nil, err
		}
		opts = append(opts, ballista.WithChaos(plan), ballista.WithChaosStats(s.chaosStats))
		if c.req.Chaos.CaseDeadlineMS > 0 {
			opts = append(opts, ballista.WithCaseDeadline(time.Duration(c.req.Chaos.CaseDeadlineMS)*time.Millisecond))
		}
	}
	var res *ballista.Result
	var err error
	if c.req.MuT == "*" {
		res, err = ballista.RunFarm(ctx, o, ballista.FarmConfig{Workers: c.req.Workers}, opts...)
	} else {
		m, found := mutFor(o, c.req.MuT)
		if !found {
			return nil, fmt.Errorf("%q is not tested on %s", c.req.MuT, o)
		}
		runner := ballista.NewRunner(o, opts...)
		var mr *core.MuTResult
		mr, err = runner.RunMuT(ctx, m, c.req.Wide)
		if err == nil {
			res = &ballista.Result{
				OS: o.String(), Results: []*core.MuTResult{mr},
				CasesRun: mr.Executed(), Reboots: runner.ResetMachine(),
			}
		}
	}
	if err != nil {
		return nil, err
	}
	return buildQueuedArtifacts(o, c.req.Workers, res)
}

// executeQueuedFleet coordinates the campaign over the fleet fabric:
// the queue waits for the single coordinator slot, installs one, and
// blocks until joined workers drain the shard catalog.
func (s *Server) executeQueuedFleet(ctx context.Context, c *campaign, o ballista.OS, obs core.Observer) (*queuedArtifacts, error) {
	var plan = s.fleetChaos
	spec := fleet.CampaignSpec{Kind: fleet.KindFarm, OS: o.WireName(), Cap: c.req.Cap, Chaos: plan}
	if c.req.Chaos != nil {
		p, err := c.req.Chaos.plan()
		if err != nil {
			return nil, err
		}
		spec.Chaos = p
		if c.req.Chaos.CaseDeadlineMS > 0 {
			spec.CaseDeadlineMS = int64(c.req.Chaos.CaseDeadlineMS)
		}
	}
	cfg := fleet.Config{Spec: spec, TTL: s.fleetTTL, ChaosStats: s.chaosStats, Spans: s.spans, Log: s.log}
	if fo, ok := obs.(core.FleetObserver); ok {
		cfg.Observer = fo
	}
	coord, err := fleet.New(cfg)
	if err != nil {
		return nil, err
	}
	// Wait for the coordinator slot (one fleet campaign at a time).
	for {
		s.fleetMu.Lock()
		if s.fleetCoord == nil {
			s.fleetCoord = coord
			s.fleetMu.Unlock()
			break
		}
		s.fleetMu.Unlock()
		select {
		case <-ctx.Done():
			coord.Close()
			return nil, ctx.Err()
		case <-time.After(200 * time.Millisecond):
		}
	}
	defer func() {
		s.fleetMu.Lock()
		s.fleetCoord = nil
		s.fleetMu.Unlock()
		coord.Close()
	}()
	res, err := coord.Wait(ctx)
	if err != nil {
		return nil, err
	}
	// Drain grace, as in handleFleetCampaign: idle workers poll for
	// completion every half heartbeat; keep the coordinator registered
	// briefly so they observe Done instead of spinning on 503s.
	drainTTL := s.fleetTTL
	if drainTTL <= 0 {
		drainTTL = 15 * time.Second
	}
	drain := drainTTL / 3
	if drain < 250*time.Millisecond {
		drain = 250 * time.Millisecond
	}
	select {
	case <-ctx.Done():
	case <-time.After(drain):
	}
	return buildQueuedArtifacts(o, coord.WorkersSeen(), res)
}

// buildQueuedArtifacts flattens a merged campaign result into the wire
// summary and renders the CSV artifact.
func buildQueuedArtifacts(o ballista.OS, workers int, res *ballista.Result) (*queuedArtifacts, error) {
	out := &FarmCampaignResponse{
		OS: o.String(), Workers: workers,
		MuTs: len(res.Results), CasesRun: res.CasesRun, Reboots: res.Reboots,
		Catastrophic: res.CatastrophicMuTs(),
		Results:      make([]CampaignResponse, 0, len(res.Results)),
	}
	for _, mr := range res.Results {
		out.Results = append(out.Results, campaignRow(o, mr))
	}
	var buf bytes.Buffer
	if err := report.WriteMuTCSV(&buf, map[osprofile.OS]*core.OSResult{o: res}); err != nil {
		return nil, err
	}
	return &queuedArtifacts{summary: out, csv: buf.Bytes()}, nil
}

// Close shuts the campaign queue down: in-flight campaigns are
// cancelled at their next test-case boundary and revert to queued
// (unjournaled, so a restart resumes them), the dispatcher drains, SSE
// subscribers are released, and the journal closes.  The HTTP mux stays
// serviceable for non-queue endpoints; queue submissions after Close
// shed with 503.
func (s *Server) Close() error {
	q := s.queue
	q.mu.Lock()
	q.closed = true
	q.cancel()
	q.cond.Broadcast()
	q.mu.Unlock()
	q.wg.Wait()
	q.mu.Lock()
	for _, c := range q.all {
		c.events.close()
	}
	q.mu.Unlock()
	return s.queueJournal.Close()
}
