package service

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"ballista"
)

func TestScarcecheckEndpoint(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	var rep ballista.ScarceReport
	req := ScarcecheckRequest{
		OSes: []string{"linux", "winnt"}, Envs: []string{"fd-full", "handle-full"},
		Seed: 7, Budget: 40, Workers: 2,
	}
	if code := postJSON(t, ts.URL+"/api/scarcecheck", req, &rep); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if rep.MuTs != 40 {
		t.Errorf("budget 40 swept %d MuTs", rep.MuTs)
	}
	if want := []string{"linux", "winnt"}; !reflect.DeepEqual(rep.OSes, want) {
		t.Errorf("oracle set %v, want %v", rep.OSes, want)
	}
	if want := []string{"fd-full", "handle-full"}; !reflect.DeepEqual(rep.Envs, want) {
		t.Errorf("env set %v, want %v", rep.Envs, want)
	}
	if rep.Items != 80 || rep.Probes == 0 {
		t.Errorf("items=%d probes=%d", rep.Items, rep.Probes)
	}

	// The sweep streamed scarce events into the server's metrics registry.
	if got := srv.Metrics().ScarceItemCount(); got != 80 {
		t.Errorf("metrics saw %d scarce items, want 80", got)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	rec := string(body)
	for _, series := range []string{
		"ballista_scarce_items_total 80",
		fmt.Sprintf("ballista_scarce_probes_total %d", rep.Probes),
		"ballista_scarce_leaked_total",
		"ballista_scarce_violating_total",
	} {
		if !strings.Contains(rec, series) {
			t.Errorf("/metrics is missing %q", series)
		}
	}

	// Identical requests yield identical reports (the endpoint is a pure
	// function of the request).
	var again ballista.ScarceReport
	if code := postJSON(t, ts.URL+"/api/scarcecheck", req, &again); code != http.StatusOK {
		t.Fatalf("second status %d", code)
	}
	if !reflect.DeepEqual(rep, again) {
		t.Error("identical scarcecheck requests returned different reports")
	}
}

func TestScarcecheckEndpointValidation(t *testing.T) {
	ts := testServer(t)
	for name, req := range map[string]ScarcecheckRequest{
		"unknown os":     {OSes: []string{"beos"}},
		"unknown env":    {Envs: []string{"ram-full"}},
		"budget too big": {Budget: MaxScarceMuTs + 1},
		"bad workers":    {Workers: -1},
	} {
		var out map[string]string
		if code := postJSON(t, ts.URL+"/api/scarcecheck", req, &out); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%v)", name, code, out)
		}
	}
}

func TestHinderEndpoint(t *testing.T) {
	ts := testServer(t)

	var results []ballista.HinderResult
	if code := postJSON(t, ts.URL+"/api/hinder", HinderRequest{OS: "win98"}, &results); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(results) == 0 {
		t.Fatal("hinder audit returned no probes")
	}
	hindering := 0
	for _, r := range results {
		if r.Hindering {
			hindering++
		}
	}
	if hindering == 0 {
		t.Error("win98 audit found no Hindering failures (the paper found several)")
	}

	// Unknown OS is a client error, not a 500.
	var out map[string]string
	if code := postJSON(t, ts.URL+"/api/hinder", HinderRequest{OS: "beos"}, &out); code != http.StatusBadRequest {
		t.Errorf("unknown os: status %d, want 400 (%v)", code, out)
	}
	// Garbage JSON is a client error too.
	resp, err := http.Post(ts.URL+"/api/hinder", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: status %d, want 400", resp.StatusCode)
	}
}
