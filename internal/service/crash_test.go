package service

import (
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"ballista"
)

func TestCrashcheckEndpoint(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	var rep ballista.CrashReport
	req := CrashcheckRequest{Seed: 7, Workers: 2}
	if code := postJSON(t, ts.URL+"/api/crashcheck", req, &rep); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if rep.Workloads != 156 || rep.CrashPoints != 300 {
		t.Errorf("sweep covered %d workloads / %d crash points, want 156/300",
			rep.Workloads, rep.CrashPoints)
	}
	if len(rep.OSes) != 7 {
		t.Errorf("oracle set %v, want all seven", rep.OSes)
	}
	if len(rep.Findings) == 0 {
		t.Error("sweep returned no findings")
	}

	// The sweep streamed crash events into the server's metrics registry.
	if got := srv.Metrics().CrashWorkloadCount(); got != 156 {
		t.Errorf("metrics saw %d crash workloads, want 156", got)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	rec := string(body)
	for _, series := range []string{
		"ballista_crash_workloads_total 156",
		"ballista_crash_divergent_total",
		"ballista_crash_violations_total",
	} {
		if !strings.Contains(rec, series) {
			t.Errorf("/metrics is missing %q", series)
		}
	}

	// Identical requests yield identical reports (the endpoint is a pure
	// function of the request).
	var again ballista.CrashReport
	if code := postJSON(t, ts.URL+"/api/crashcheck", req, &again); code != http.StatusOK {
		t.Fatalf("second status %d", code)
	}
	if !reflect.DeepEqual(rep, again) {
		t.Error("identical crashcheck requests returned different reports")
	}
}

func TestCrashcheckEndpointValidation(t *testing.T) {
	ts := testServer(t)
	for name, req := range map[string]CrashcheckRequest{
		"unknown os":      {OSes: []string{"beos"}},
		"max_ops too big": {MaxOps: MaxCrashOps + 1},
		"budget too big":  {Budget: MaxCrashWorkloads + 1},
		"bad workers":     {Workers: -1},
	} {
		var out map[string]string
		if code := postJSON(t, ts.URL+"/api/crashcheck", req, &out); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%v)", name, code, out)
		}
	}
}

// TestCrashcheckRestrictedOSSet: a two-profile oracle still diverges on
// the FAT-vs-ext2 rename story, and the report names exactly those
// profiles.
func TestCrashcheckRestrictedOSSet(t *testing.T) {
	ts := testServer(t)
	var rep ballista.CrashReport
	req := CrashcheckRequest{OSes: []string{"linux", "win98"}, Seed: 7, Budget: 24}
	if code := postJSON(t, ts.URL+"/api/crashcheck", req, &rep); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if want := []string{"linux", "win98"}; !reflect.DeepEqual(rep.OSes, want) {
		t.Errorf("oracle set %v, want %v", rep.OSes, want)
	}
	if rep.Workloads != 24 {
		t.Errorf("budget 24 swept %d workloads", rep.Workloads)
	}
	if rep.Divergent == 0 {
		t.Error("linux/win98 oracle found no divergence")
	}
}
