package service

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ballista/internal/chaos"
)

// TestCampaignChaosBlock drives a campaign under a seeded fault plan and
// checks both the campaign outcome and the exported chaos counters.
func TestCampaignChaosBlock(t *testing.T) {
	ts := testServer(t)
	var out CampaignResponse
	// Inline rules, dense enough that the one MuT's write sites are
	// guaranteed to draw at least one fault.
	code := postJSON(t, ts.URL+"/api/campaign", CampaignRequest{
		OS: "winnt", MuT: "WriteFile", Cap: 300,
		Chaos: &ChaosSpec{Seed: 1, Rules: []chaos.Rule{
			{Op: chaos.OpFSWrite, Kind: chaos.KindENOSPC, RatePerMille: 500, Transient: true},
		}},
	}, &out)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out.Cases == 0 {
		t.Fatal("no cases ran")
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<20)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	// A sample line with a label, not just the HELP header: the
	// campaign above must actually have fired.
	if !strings.Contains(body, `ballista_chaos_injected_total{op="fs.write"}`) {
		t.Error("metrics missing a fired ballista_chaos_injected_total sample after chaos campaign")
	}
}

func TestCampaignChaosBadSpec(t *testing.T) {
	ts := testServer(t)
	var out map[string]string
	code := postJSON(t, ts.URL+"/api/campaign", CampaignRequest{
		OS: "winnt", MuT: "WriteFile", Cap: 50,
		Chaos: &ChaosSpec{Preset: "no-such-preset"},
	}, &out)
	if code != http.StatusBadRequest {
		t.Errorf("unknown preset status %d, want 400", code)
	}
}

// TestLoadShedding fills every campaign slot and checks the next heavy
// request is shed with 429 + Retry-After while light endpoints still
// serve.
func TestLoadShedding(t *testing.T) {
	srv := NewServer(WithCampaignLimit(1))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Occupy the only slot directly (the handlers' acquire/release pair
	// brackets the campaign run).
	srv.sem <- struct{}{}
	defer func() { <-srv.sem }()

	var out map[string]string
	req, _ := http.NewRequest("POST", ts.URL+"/api/campaign",
		strings.NewReader(`{"os":"winnt","mut":"WriteFile","cap":50}`))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}

	// Light endpoints are unaffected by campaign saturation.
	if code := getJSON(t, ts.URL+"/api/oses", &[]string{}); code != http.StatusOK {
		t.Errorf("light endpoint status %d under load", code)
	}
	_ = out
}

// TestRequestTimeout bounds a campaign by the server-side timeout: the
// response is 503 (campaign context deadline), not a hang.
func TestRequestTimeout(t *testing.T) {
	srv := NewServer(WithRequestTimeout(time.Millisecond))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var out map[string]string
	code := postJSON(t, ts.URL+"/api/campaign",
		CampaignRequest{OS: "winnt", MuT: "*", Cap: 5000, Workers: 2}, &out)
	if code != http.StatusServiceUnavailable {
		t.Errorf("status %d, want 503 on server-side timeout", code)
	}
}
