package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ballista"
	"ballista/internal/fleet"
	"ballista/internal/telemetry/span"
)

// queueServer builds a server whose queue is actually shut down at test
// end (the leak checker would flag a lingering dispatcher otherwise).
func queueServer(t *testing.T, opts ...ServerOption) (*Server, *httptest.Server) {
	t.Helper()
	svc := NewServer(opts...)
	ts := httptest.NewServer(svc)
	t.Cleanup(func() {
		if err := svc.Close(); err != nil {
			t.Errorf("closing server: %v", err)
		}
		ts.Close()
	})
	return svc, ts
}

// postRaw is postJSON when the test needs the response headers too.
func postRaw(t *testing.T, url string, in any) *http.Response {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// waitTerminal polls one campaign until it leaves the queue/running
// states.
func waitTerminal(t *testing.T, base, id string) CampaignDetail {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var d CampaignDetail
		if code := getJSON(t, base+"/api/campaigns/"+id, &d); code != http.StatusOK {
			t.Fatalf("campaign %s: status %d", id, code)
		}
		switch d.State {
		case StateDone, StateFailed, StateCanceled:
			return d
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("campaign %s did not finish", id)
	return CampaignDetail{}
}

// readSSE consumes a campaign's event stream until the server closes it
// at the terminal state.
func readSSE(t *testing.T, url string) []queueEvent {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	var evs []queueEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var ev queueEvent
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("bad SSE data %q: %v", data, err)
			}
			evs = append(evs, ev)
		}
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	return evs
}

// TestQueuePriorityOrderUnit pins the scheduling rule without timing:
// highest priority first, submission order within a priority, bounded by
// the executor count.
func TestQueuePriorityOrderUnit(t *testing.T) {
	q := newQueue(1, 4)
	mk := func(pri int) *campaign {
		c := &campaign{
			seq: q.seq, id: fmt.Sprintf("c%06d", q.seq),
			priority: pri, state: StateQueued, events: newEventLog(),
		}
		q.seq++
		q.all = append(q.all, c)
		q.byID[c.id] = c
		return c
	}
	low := mk(1)
	highA := mk(9)
	highB := mk(9)

	if got := q.nextRunnableLocked(); got != highA {
		t.Fatalf("next = %v, want first-submitted high-priority %s", got, highA.id)
	}
	highA.state = StateRunning
	q.running++
	if got := q.nextRunnableLocked(); got != nil {
		t.Fatalf("executor slot busy but next = %s", got.id)
	}
	q.running--
	highA.state = StateDone
	if got := q.nextRunnableLocked(); got != highB {
		t.Fatalf("next = %v, want FIFO peer %s", got, highB.id)
	}
	highB.state = StateDone
	if got := q.nextRunnableLocked(); got != low {
		t.Fatalf("next = %v, want %s", got, low.id)
	}
}

// TestQueueSubmitValidation covers the submit-side error surface.
func TestQueueSubmitValidation(t *testing.T) {
	_, ts := queueServer(t)
	cases := []struct {
		name string
		req  QueueSubmitRequest
		code int
	}{
		{"unknown os", QueueSubmitRequest{CampaignRequest: CampaignRequest{OS: "beos"}}, http.StatusBadRequest},
		{"unknown mut", QueueSubmitRequest{CampaignRequest: CampaignRequest{OS: "win98", MuT: "NtQuarks"}}, http.StatusNotFound},
		{"bad workers", QueueSubmitRequest{CampaignRequest: CampaignRequest{OS: "win98", Workers: -1}}, http.StatusBadRequest},
		{"bad engine", QueueSubmitRequest{CampaignRequest: CampaignRequest{OS: "win98"}, Engine: "mainframe"}, http.StatusBadRequest},
		{"bad chaos", QueueSubmitRequest{CampaignRequest: CampaignRequest{OS: "win98", Chaos: &ChaosSpec{Preset: "nope", Seed: 1}}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		var errResp map[string]string
		if code := postJSON(t, ts.URL+"/api/campaigns", tc.req, &errResp); code != tc.code {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.code)
		}
	}
	if code := getJSON(t, ts.URL+"/api/campaigns/c999999", new(map[string]string)); code != http.StatusNotFound {
		t.Errorf("unknown campaign: status %d, want 404", code)
	}
}

// TestQueuedCampaignLifecycle drives one campaign from submission to
// artifacts: 202 with an id, SSE stream showing queued -> running ->
// shard progress -> done, then history, detail and CSV endpoints.
func TestQueuedCampaignLifecycle(t *testing.T) {
	_, ts := queueServer(t)
	var ack QueueSubmitResponse
	code := postJSON(t, ts.URL+"/api/campaigns", QueueSubmitRequest{
		CampaignRequest: CampaignRequest{OS: "winnt", MuT: "*", Cap: 40, Workers: 2},
		Tenant:          "acme", Priority: 3,
	}, &ack)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	if ack.ID == "" || ack.State != StateQueued {
		t.Fatalf("ack = %+v", ack)
	}

	evs := readSSE(t, ts.URL+"/api/campaigns/"+ack.ID+"/events")
	var states []string
	shards := 0
	for _, ev := range evs {
		switch ev.Kind {
		case "state":
			states = append(states, ev.State)
		case "shard":
			shards++
			if ev.MuT == "" || ev.Cases <= 0 {
				t.Errorf("shard event missing detail: %+v", ev)
			}
		}
	}
	want := []string{StateQueued, StateRunning, StateDone}
	if len(states) != len(want) {
		t.Fatalf("state transitions %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("state transitions %v, want %v", states, want)
		}
	}
	if shards == 0 {
		t.Error("no shard progress events on the SSE stream")
	}
	if last := evs[len(evs)-1]; last.Kind != "done" || last.State != StateDone {
		t.Errorf("last event = %+v, want terminal done", last)
	}

	d := waitTerminal(t, ts.URL, ack.ID)
	if d.Tenant != "acme" || d.Priority != 3 || d.Result == nil {
		t.Fatalf("detail = %+v", d)
	}
	if d.Result.CasesRun == 0 || len(d.Result.Results) == 0 {
		t.Fatalf("result = %+v", d.Result)
	}
	if d.Started == nil || d.Finished == nil || d.Finished.Before(*d.Started) {
		t.Errorf("timestamps: started=%v finished=%v", d.Started, d.Finished)
	}

	var list []CampaignSummary
	if code := getJSON(t, ts.URL+"/api/campaigns?tenant=acme&state=done", &list); code != http.StatusOK {
		t.Fatalf("list status %d", code)
	}
	if len(list) != 1 || list[0].ID != ack.ID {
		t.Fatalf("list = %+v", list)
	}

	resp, err := http.Get(ts.URL + "/api/campaigns/" + ack.ID + "/csv")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	csv, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "text/csv" {
		t.Fatalf("csv status %d, type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if !strings.HasPrefix(string(csv), "os,api,group,mut,") {
		t.Errorf("csv starts %q", string(csv[:min(len(csv), 40)]))
	}
}

// TestQueuePriorityAcrossTenants is the acceptance scenario: with one
// executor busy, a later high-priority submission from one tenant runs
// before an earlier low-priority one from another.
func TestQueuePriorityAcrossTenants(t *testing.T) {
	_, ts := queueServer(t, WithQueueExecutors(1))
	submit := func(tenant string, priority, cap int) string {
		var ack QueueSubmitResponse
		code := postJSON(t, ts.URL+"/api/campaigns", QueueSubmitRequest{
			CampaignRequest: CampaignRequest{OS: "winnt", MuT: "*", Cap: cap, Workers: 2},
			Tenant:          tenant, Priority: priority,
		}, &ack)
		if code != http.StatusAccepted {
			t.Fatalf("submit(%s): status %d", tenant, code)
		}
		return ack.ID
	}
	// The blocker occupies the only executor slot while the two
	// contenders are queued behind it.
	blocker := submit("ops", 5, 120)
	lowID := submit("alice", 1, 30)
	highID := submit("bob", 8, 30)

	waitTerminal(t, ts.URL, blocker)
	low := waitTerminal(t, ts.URL, lowID)
	high := waitTerminal(t, ts.URL, highID)
	if low.State != StateDone || high.State != StateDone {
		t.Fatalf("low=%s high=%s, want both done", low.State, high.State)
	}
	if high.Started == nil || low.Started == nil {
		t.Fatal("missing start timestamps")
	}
	if high.Started.After(*low.Started) {
		t.Errorf("priority inversion: bob (priority 8, started %v) ran after alice (priority 1, started %v)",
			high.Started, low.Started)
	}
}

// TestQueueTenantQuota verifies the per-tenant admission bound: the
// tenant at quota sheds with 429 + Retry-After while other tenants stay
// admitted.
func TestQueueTenantQuota(t *testing.T) {
	_, ts := queueServer(t, WithTenantQuota(1), WithQueueExecutors(1))
	var ack QueueSubmitResponse
	if code := postJSON(t, ts.URL+"/api/campaigns", QueueSubmitRequest{
		CampaignRequest: CampaignRequest{OS: "winnt", MuT: "*", Cap: 150, Workers: 2},
		Tenant:          "t",
	}, &ack); code != http.StatusAccepted {
		t.Fatalf("first submit status %d", code)
	}

	resp := postRaw(t, ts.URL+"/api/campaigns", QueueSubmitRequest{
		CampaignRequest: CampaignRequest{OS: "win98", MuT: "*", Cap: 30},
		Tenant:          "t",
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}

	var ack2 QueueSubmitResponse
	if code := postJSON(t, ts.URL+"/api/campaigns", QueueSubmitRequest{
		CampaignRequest: CampaignRequest{OS: "win98", MuT: "*", Cap: 30},
		Tenant:          "u",
	}, &ack2); code != http.StatusAccepted {
		t.Fatalf("other tenant status %d, want 202", code)
	}

	var status StatusResponse
	if code := getJSON(t, ts.URL+"/api/status", &status); code != http.StatusOK {
		t.Fatalf("status endpoint: %d", code)
	}
	if status.Queue.Rejected != 1 || status.Queue.Submitted != 2 {
		t.Errorf("queue counters = %+v", status.Queue)
	}
	waitTerminal(t, ts.URL, ack.ID)
	waitTerminal(t, ts.URL, ack2.ID)
}

// TestQueueJournalResume is the journal-before-acknowledge contract end
// to end: a completed campaign's history and artifacts survive a server
// restart byte for byte, and an acknowledged-but-unfinished submission
// re-enqueues and completes on the restarted server.
func TestQueueJournalResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.jsonl")

	qj, err := OpenQueueJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	svc := NewServer(WithQueueJournal(qj))
	ts := httptest.NewServer(svc)
	var ack QueueSubmitResponse
	if code := postJSON(t, ts.URL+"/api/campaigns", QueueSubmitRequest{
		CampaignRequest: CampaignRequest{OS: "win98", MuT: "ReadFile", Cap: 80},
		Tenant:          "acme", Priority: 2,
	}, &ack); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	first := waitTerminal(t, ts.URL, ack.ID)
	if first.State != StateDone {
		t.Fatalf("campaign state %s: %s", first.State, first.Error)
	}
	resp, err := http.Get(ts.URL + "/api/campaigns/" + ack.ID + "/csv")
	if err != nil {
		t.Fatal(err)
	}
	firstCSV, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	ts.Close()

	// Restart: history, result and CSV must come back from the journal.
	qj2, err := OpenQueueJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	svc2 := NewServer(WithQueueJournal(qj2))
	ts2 := httptest.NewServer(svc2)
	t.Cleanup(func() {
		svc2.Close()
		ts2.Close()
	})
	var d CampaignDetail
	if code := getJSON(t, ts2.URL+"/api/campaigns/"+ack.ID, &d); code != http.StatusOK {
		t.Fatalf("restarted detail status %d", code)
	}
	if d.State != StateDone || d.Tenant != "acme" || d.Priority != 2 || d.Result == nil {
		t.Fatalf("restarted detail = %+v", d)
	}
	if d.Result.CasesRun != first.Result.CasesRun {
		t.Errorf("restored cases_run %d, want %d", d.Result.CasesRun, first.Result.CasesRun)
	}
	resp2, err := http.Get(ts2.URL + "/api/campaigns/" + ack.ID + "/csv")
	if err != nil {
		t.Fatal(err)
	}
	secondCSV, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if string(firstCSV) != string(secondCSV) {
		t.Error("restored CSV artifact differs from the original")
	}

	// An unfinished submission (journaled, never terminal) re-enqueues
	// and runs to completion on the next server.
	qj3, err := OpenQueueJournal(filepath.Join(t.TempDir(), "pending.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if err := qj3.append(queueRecord{
		Op: "submit", Seq: 0, ID: "c000000", Tenant: "acme",
		Req: &CampaignRequest{OS: "win98", MuT: "ReadFile", Cap: 40},
		At: time.Now(),
	}); err != nil {
		t.Fatal(err)
	}
	if err := qj3.Close(); err != nil {
		t.Fatal(err)
	}
	qj4, err := OpenQueueJournal(qj3name(qj3, t))
	if err != nil {
		t.Fatal(err)
	}
	svc3 := NewServer(WithQueueJournal(qj4))
	ts3 := httptest.NewServer(svc3)
	t.Cleanup(func() {
		svc3.Close()
		ts3.Close()
	})
	resumed := waitTerminal(t, ts3.URL, "c000000")
	if resumed.State != StateDone || resumed.Result == nil {
		t.Fatalf("resumed campaign = %+v (err %q)", resumed.CampaignSummary, resumed.Error)
	}
}

// qj3name recovers the journal path from the handle (the file is closed
// but its name persists).
func qj3name(qj *QueueJournal, t *testing.T) string {
	t.Helper()
	return qj.f.Name()
}

// TestStatusEndpoint checks the server identity surface: a code-version
// stamp, queue health, and store counters when a store is attached.
func TestStatusEndpoint(t *testing.T) {
	st, err := ballista.OpenStore(ballista.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := queueServer(t, WithStore(st))
	var status StatusResponse
	if code := getJSON(t, ts.URL+"/api/status", &status); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if status.Version == "" {
		t.Error("no code-version stamp")
	}
	if status.Store == nil {
		t.Error("store attached but /api/status has no store section")
	}
	if status.Queue.TenantQuota != DefaultTenantQuota || status.Queue.Executors != 1 {
		t.Errorf("queue defaults = %+v", status.Queue)
	}
}

// TestFleetConflictIncludesActiveCampaign: the 409 for a second fleet
// campaign names the campaign holding the slot and sets Retry-After.
func TestFleetConflictIncludesActiveCampaign(t *testing.T) {
	svc, ts := queueServer(t)
	coord, err := fleet.New(fleet.Config{
		Spec: fleet.CampaignSpec{Kind: fleet.KindFarm, OS: "winnt", Cap: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	svc.fleetMu.Lock()
	svc.fleetCoord = coord
	svc.fleetMu.Unlock()
	defer func() {
		svc.fleetMu.Lock()
		svc.fleetCoord = nil
		svc.fleetMu.Unlock()
	}()

	resp := postRaw(t, ts.URL+"/api/fleet/campaign", FleetCampaignRequest{OS: "winnt", Cap: 50})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status %d, want 409", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != fmt.Sprint(DefaultRetryAfter) {
		t.Errorf("Retry-After = %q, want %d", got, DefaultRetryAfter)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["active_campaign"] != coord.ID() {
		t.Errorf("active_campaign = %q, want %q", body["active_campaign"], coord.ID())
	}
	if body["error"] == "" {
		t.Error("409 body lost its error message")
	}
}

// TestSpansLimitAndPhaseFilters covers the ?limit= and ?phase= query
// parameters on GET /api/spans.
func TestSpansLimitAndPhaseFilters(t *testing.T) {
	rec := span.New(span.Options{})
	_, ts := queueServer(t, WithSpanRecorder(rec))
	var resp CampaignResponse
	if code := postJSON(t, ts.URL+"/api/campaign",
		CampaignRequest{OS: "win98", MuT: "ReadFile", Cap: 60}, &resp); code != http.StatusOK {
		t.Fatalf("campaign status %d", code)
	}

	var all SpansResponse
	if code := getJSON(t, ts.URL+"/api/spans", &all); code != http.StatusOK {
		t.Fatalf("spans status %d", code)
	}
	if len(all.Spans) < 2 {
		t.Fatalf("campaign recorded %d spans", len(all.Spans))
	}

	var limited SpansResponse
	if code := getJSON(t, ts.URL+"/api/spans?limit=1", &limited); code != http.StatusOK {
		t.Fatalf("limit status %d", code)
	}
	if len(limited.Spans) != 1 {
		t.Errorf("limit=1 returned %d spans", len(limited.Spans))
	}
	if limited.Spans[0] != all.Spans[len(all.Spans)-1] {
		t.Error("limit=1 did not return the most recent span")
	}

	var muts SpansResponse
	if code := getJSON(t, ts.URL+"/api/spans?phase=mut", &muts); code != http.StatusOK {
		t.Fatalf("phase status %d", code)
	}
	if len(muts.Spans) == 0 {
		t.Fatal("phase=mut matched nothing")
	}
	for _, sp := range muts.Spans {
		if sp.Phase != "mut" {
			t.Errorf("phase filter leaked span %+v", sp)
		}
	}

	var errResp map[string]string
	if code := getJSON(t, ts.URL+"/api/spans?limit=bogus", &errResp); code != http.StatusBadRequest {
		t.Errorf("bad limit: status %d, want 400", code)
	}
}
