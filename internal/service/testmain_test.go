package service

import (
	"testing"

	"ballista/internal/leak"
)

// TestMain guards the service's goroutine hygiene: campaign slots,
// request timeouts and shed load must never strand a goroutine.
func TestMain(m *testing.M) { leak.VerifyTestMain(m) }
