// HTTP surface of the multi-tenant campaign queue:
//
//	POST /api/campaigns              submit (202; journaled before ack)
//	GET  /api/campaigns              history + queue (?tenant=, ?state=)
//	GET  /api/campaigns/{id}         one campaign with its merged result
//	GET  /api/campaigns/{id}/csv     the CSV artifact of a done campaign
//	GET  /api/campaigns/{id}/events  SSE progress stream
//	GET  /api/status                 server identity + store/queue health
package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"ballista/internal/store"
	"ballista/internal/version"
)

// handleQueueSubmit accepts one campaign into the queue.  The journal
// record is written and fsynced before the 202 acknowledgement — a
// crash after the ack can only replay the campaign, never lose it.
func (s *Server) handleQueueSubmit(w http.ResponseWriter, r *http.Request) {
	var req QueueSubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	o, ok := parseOS(req.OS)
	if !ok {
		s.httpError(w, http.StatusBadRequest, "unknown os")
		return
	}
	if req.MuT == "" {
		req.MuT = "*"
	}
	if req.MuT != "*" {
		if _, found := mutFor(o, req.MuT); !found {
			s.httpError(w, http.StatusNotFound, fmt.Sprintf("%q is not tested on %s", req.MuT, o))
			return
		}
	}
	if req.Workers < 0 {
		s.httpError(w, http.StatusBadRequest, "bad workers")
		return
	}
	if req.Chaos != nil {
		if _, err := req.Chaos.plan(); err != nil {
			s.httpError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	switch req.Engine {
	case "", "farm", "fleet":
	default:
		s.httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown engine %q", req.Engine))
		return
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = "default"
	}
	priority := req.Priority
	if priority < 0 {
		priority = 0
	}
	if priority > MaxPriority {
		priority = MaxPriority
	}

	q := s.queue
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		s.httpError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	if q.activeForTenantLocked(tenant) >= q.quota {
		q.rejected++
		q.mu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(DefaultRetryAfter))
		s.httpError(w, http.StatusTooManyRequests,
			fmt.Sprintf("tenant %q at quota (%d active campaigns); retry later", tenant, q.quota))
		return
	}
	seq := q.seq
	q.seq++
	c := &campaign{
		seq: seq, id: fmt.Sprintf("c%06d", seq), tenant: tenant,
		priority: priority, engine: req.Engine, req: req.CampaignRequest,
		state: StateQueued, submitted: time.Now(), events: newEventLog(),
	}
	// Journal before acknowledge: the fsync happens under the queue lock
	// so the dispatcher cannot complete (and journal "done" for) a
	// campaign whose submission is not yet durable.
	if err := s.queueJournal.append(queueRecord{
		Op: "submit", Seq: c.seq, ID: c.id, Tenant: c.tenant,
		Priority: c.priority, Engine: c.engine, Req: &c.req, At: c.submitted,
	}); err != nil {
		q.seq = seq
		q.rejected++
		q.mu.Unlock()
		s.httpError(w, http.StatusInternalServerError, "journaling submission: "+err.Error())
		return
	}
	q.byID[c.id] = c
	q.all = append(q.all, c)
	q.submitted++
	position := q.queuedCountLocked()
	c.qspan = s.spans.Start("queue", c.id).SetDetail(tenant)
	s.ensureDispatcherLocked()
	q.cond.Broadcast()
	q.mu.Unlock()

	c.events.emit(queueEvent{Kind: "state", State: StateQueued})
	s.writeJSON(w, http.StatusAccepted, QueueSubmitResponse{
		ID: c.id, State: StateQueued, Position: position,
	})
}

// handleQueueList returns every campaign the server knows, submission
// order, optionally filtered by ?tenant= and ?state=.
func (s *Server) handleQueueList(w http.ResponseWriter, r *http.Request) {
	tenant := r.URL.Query().Get("tenant")
	state := r.URL.Query().Get("state")
	q := s.queue
	q.mu.Lock()
	out := make([]CampaignSummary, 0, len(q.all))
	for _, c := range q.all {
		if tenant != "" && c.tenant != tenant {
			continue
		}
		if state != "" && c.state != state {
			continue
		}
		out = append(out, c.summary())
	}
	q.mu.Unlock()
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) lookupCampaign(id string) *campaign {
	s.queue.mu.Lock()
	defer s.queue.mu.Unlock()
	return s.queue.byID[id]
}

// handleQueueGet returns one campaign with its merged result.
func (s *Server) handleQueueGet(w http.ResponseWriter, r *http.Request) {
	c := s.lookupCampaign(r.PathValue("id"))
	if c == nil {
		s.httpError(w, http.StatusNotFound, "unknown campaign")
		return
	}
	s.queue.mu.Lock()
	out := CampaignDetail{CampaignSummary: c.summary(), Result: c.result}
	s.queue.mu.Unlock()
	s.writeJSON(w, http.StatusOK, out)
}

// handleQueueCSV serves a done campaign's CSV artifact — byte-identical
// to what `ballista -csv` writes for the same campaign.
func (s *Server) handleQueueCSV(w http.ResponseWriter, r *http.Request) {
	c := s.lookupCampaign(r.PathValue("id"))
	if c == nil {
		s.httpError(w, http.StatusNotFound, "unknown campaign")
		return
	}
	s.queue.mu.Lock()
	state := c.state
	csv := c.csv
	s.queue.mu.Unlock()
	if state != StateDone {
		s.httpError(w, http.StatusConflict, fmt.Sprintf("campaign is %s, not done", state))
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	w.WriteHeader(http.StatusOK)
	w.Write(csv)
}

// handleQueueEvents streams a campaign's progress as Server-Sent
// Events: the replay buffer first, then live events until the campaign
// reaches a terminal state (or the client disconnects).
func (s *Server) handleQueueEvents(w http.ResponseWriter, r *http.Request) {
	c := s.lookupCampaign(r.PathValue("id"))
	if c == nil {
		s.httpError(w, http.StatusNotFound, "unknown campaign")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	replay, ch, cancel := c.events.subscribe()
	defer cancel()
	for _, ev := range replay {
		if err := writeSSE(w, ev); err != nil {
			return
		}
	}
	flusher.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-ch:
			if !open {
				return // terminal event delivered (or server shutdown)
			}
			if err := writeSSE(w, ev); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

func writeSSE(w http.ResponseWriter, ev queueEvent) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data)
	return err
}

// StatusResponse is the GET /api/status body: who this server is and
// how its store and queue are doing.
type StatusResponse struct {
	// Version is the code-version stamp (git revision, ldflags override,
	// or catalog-content hash) that also keys the result store.
	Version string `json:"version"`
	Store   *store.Stats `json:"store,omitempty"`
	Queue   QueueStatus  `json:"queue"`
	// FleetCampaign is the active fleet campaign id, if one is being
	// coordinated.
	FleetCampaign string `json:"fleet_campaign,omitempty"`
}

// QueueStatus summarizes the campaign queue for /api/status.
type QueueStatus struct {
	Queued      int    `json:"queued"`
	Running     int    `json:"running"`
	Submitted   uint64 `json:"submitted"`
	Rejected    uint64 `json:"rejected"`
	Done        uint64 `json:"done"`
	Failed      uint64 `json:"failed"`
	Canceled    uint64 `json:"canceled"`
	TenantQuota int    `json:"tenant_quota"`
	Executors   int    `json:"executors"`
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	qs := s.queue.stats()
	out := StatusResponse{
		Version: version.Stamp(),
		Queue: QueueStatus{
			Queued: qs.Queued, Running: qs.Running,
			Submitted: qs.Submitted, Rejected: qs.Rejected,
			Done: qs.Done, Failed: qs.Failed, Canceled: qs.Canceled,
			TenantQuota: s.queue.quota, Executors: s.queue.executors,
		},
	}
	if s.store != nil {
		st := s.store.Snapshot()
		out.Store = &st
	}
	s.fleetMu.Lock()
	if s.fleetCoord != nil {
		out.FleetCampaign = s.fleetCoord.ID()
	}
	s.fleetMu.Unlock()
	s.writeJSON(w, http.StatusOK, out)
}
