package api

import (
	"testing"
	"testing/quick"

	"ballista/internal/sim/kern"
	"ballista/internal/sim/mem"
)

func newCall(t *testing.T, arch kern.Arch, traits Traits) *Call {
	t.Helper()
	k := kern.New(arch)
	return &Call{K: k, P: k.NewProcess(), Name: "TestFn", Traits: traits}
}

var (
	ntTraits   = Traits{OSName: "Windows NT", ProbeKernel: true}
	unixTraits = Traits{OSName: "Linux", Unix: true, ProbeKernel: true}
	n9xTraits  = Traits{OSName: "Windows 98", SharedArena: true, StubErrorBP: 4200, StubSilentBP: 3300}
)

func TestTerminalOutcomesAreSticky(t *testing.T) {
	c := newCall(t, kern.ArchNT, ntTraits)
	c.Ret(42)
	c.FailWin(ErrorInvalidHandle) // must be a no-op after Ret
	if c.Out.Ret != 42 || c.Out.ErrReported {
		t.Errorf("second terminal overwrote the first: %+v", c.Out)
	}
}

func TestFailWinSetsLastError(t *testing.T) {
	c := newCall(t, kern.ArchNT, ntTraits)
	c.FailWin(ErrorAccessDenied)
	if c.P.LastError != ErrorAccessDenied || !c.Out.ErrReported || c.Out.Ret != 0 {
		t.Errorf("FailWin: %+v lastError=%d", c.Out, c.P.LastError)
	}
}

func TestFailErrno(t *testing.T) {
	c := newCall(t, kern.ArchUnix, unixTraits)
	c.FailErrno(ENOENT)
	if c.P.Errno != int32(ENOENT) || c.Out.Ret != -1 {
		t.Errorf("FailErrno: %+v errno=%d", c.Out, c.P.Errno)
	}
}

func TestMemFaultPersonality(t *testing.T) {
	c := newCall(t, kern.ArchUnix, unixTraits)
	c.MemFault(&mem.Fault{Addr: 0x100, Kind: mem.FaultUnmapped})
	if !c.Out.IsSignal || c.Out.Exception != SIGSEGV {
		t.Errorf("unix fault: %+v", c.Out)
	}
	c2 := newCall(t, kern.ArchNT, ntTraits)
	c2.MemFault(&mem.Fault{Addr: 0x100, Kind: mem.FaultUnmapped})
	if c2.Out.IsSignal || c2.Out.Exception != ExcAccessViolation {
		t.Errorf("windows fault: %+v", c2.Out)
	}
}

func TestCopyOutProbing(t *testing.T) {
	// Linux: EFAULT error return.  NT: thrown access violation.
	lc := newCall(t, kern.ArchUnix, unixTraits)
	if lc.CopyOut(0, 0, []byte{1}) {
		t.Fatal("CopyOut to NULL succeeded")
	}
	if lc.Out.Exception != 0 || !lc.Out.ErrReported || lc.Out.Err != EFAULT {
		t.Errorf("Linux CopyOut(NULL): %+v", lc.Out)
	}

	nc := newCall(t, kern.ArchNT, ntTraits)
	if nc.CopyOut(0, 0, []byte{1}) {
		t.Fatal("CopyOut to NULL succeeded")
	}
	if nc.Out.Exception != ExcAccessViolation {
		t.Errorf("NT CopyOut(NULL): %+v", nc.Out)
	}
}

func TestCopyOutValid(t *testing.T) {
	for _, arch := range []kern.Arch{kern.ArchNT, kern.ArchUnix, kern.Arch9x} {
		traits := ntTraits
		switch arch.Name {
		case "unix":
			traits = unixTraits
		case "9x":
			traits = n9xTraits
		}
		c := newCall(t, arch, traits)
		a, _ := c.P.AS.Alloc(64, mem.ProtRW)
		if !c.CopyOut(0, a, []byte("data")) {
			t.Errorf("%s: CopyOut to valid memory failed: %+v", arch.Name, c.Out)
		}
		got, _ := c.P.AS.Read(a, 4)
		if string(got) != "data" {
			t.Errorf("%s: CopyOut wrote %q", arch.Name, got)
		}
	}
}

// TestNineXStubPolicyPartition: across many sites, the 9x stub policy
// produces all three behaviours with roughly the configured frequencies.
func TestNineXStubPolicyPartition(t *testing.T) {
	var errs, silents, aborts int
	const trials = 400
	for i := 0; i < trials; i++ {
		c := newCall(t, kern.Arch9x, n9xTraits)
		c.Name = "Fn" + string(rune('A'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i%7))
		ok := c.CopyOut(i%4, 0x7F000000, []byte{1, 2, 3, 4})
		switch {
		case ok && !c.Done():
			silents++
		case c.Out.Exception != 0:
			aborts++
		case c.Out.ErrReported:
			errs++
		}
	}
	if errs == 0 || silents == 0 || aborts == 0 {
		t.Fatalf("stub policy degenerate: errors=%d silents=%d aborts=%d", errs, silents, aborts)
	}
	// Roughly 42% / 33% / 25%.
	if errs < trials/4 || silents < trials/6 || aborts < trials/10 {
		t.Errorf("stub policy skewed: errors=%d silents=%d aborts=%d", errs, silents, aborts)
	}
}

// TestStubPolicyDeterministic: the same OS+function+site decides the same
// way every time (the paper's results were "highly repeatable").
func TestStubPolicyDeterministic(t *testing.T) {
	prop := func(fnIdx uint8, param uint8) bool {
		name := "Fn" + string(rune('A'+fnIdx%26))
		run := func() Outcome {
			c := newCall(t, kern.Arch9x, n9xTraits)
			c.Name = name
			c.CopyOut(int(param%4), 0x7F000000, []byte{1})
			return c.Out
		}
		a, b := run(), run()
		return a.Exception == b.Exception && a.ErrReported == b.ErrReported
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDefectRawOutCrashesSharedArena(t *testing.T) {
	c := newCall(t, kern.Arch9x, Traits{OSName: "Windows 98", SharedArena: true})
	c.Def = &DefectSpec{Mech: MechRawOut, Param: 1}
	if c.CopyOut(1, 0, []byte("CONTEXT")) {
		t.Fatal("defect CopyOut(NULL) reported success")
	}
	if !c.Out.Crashed {
		t.Fatalf("defect CopyOut(NULL) on 9x should be Catastrophic: %+v", c.Out)
	}
}

func TestDefectWrongParamIsInert(t *testing.T) {
	c := newCall(t, kern.Arch9x, n9xTraits)
	c.Def = &DefectSpec{Mech: MechRawOut, Param: 3}
	c.CopyOut(1, 0, []byte{1}) // different parameter: normal stub path
	if c.Out.Crashed {
		t.Error("defect on param 3 fired for param 1")
	}
}

func TestDefectWideOnly(t *testing.T) {
	c := newCall(t, kern.ArchCE, Traits{OSName: "Windows CE", SharedArena: true})
	c.Def = &DefectSpec{Mech: MechCorrupt, Amount: 1000, WideOnly: true}
	if c.DefectCorrupt(true) {
		t.Fatal("wide-only defect fired on narrow call")
	}
	c.Wide = true
	if !c.DefectCorrupt(true) {
		t.Fatal("wide-only defect did not fire on wide call")
	}
	if !c.Out.Crashed {
		t.Error("immediate corruption amount did not crash")
	}
}

func TestDefectCorruptAccumulates(t *testing.T) {
	k := kern.New(kern.Arch9x)
	fire := func() bool {
		c := &Call{K: k, P: k.NewProcess(), Name: "DuplicateHandle",
			Traits: n9xTraits, Def: &DefectSpec{Mech: MechCorrupt, Amount: kern.CorruptionStep}}
		return c.DefectCorrupt(true)
	}
	if fire() {
		t.Fatal("first trigger crashed (should only accumulate)")
	}
	if !fire() {
		t.Fatal("second trigger should cross the threshold")
	}
}

func TestFailMaybeSilent(t *testing.T) {
	// Probing kernels always report the error.
	c := newCall(t, kern.ArchNT, ntTraits)
	c.FailMaybeSilent(0, ErrorInvalidHandle, 1)
	if !c.Out.ErrReported {
		t.Error("NT FailMaybeSilent did not report")
	}
	// On 9x, across many functions, some sites are silent.
	silent := 0
	for i := 0; i < 200; i++ {
		c := newCall(t, kern.Arch9x, n9xTraits)
		c.Name = "Api" + string(rune('A'+i%26)) + string(rune('a'+i/26))
		c.FailMaybeSilent(0, ErrorInvalidHandle, 1)
		if !c.Out.ErrReported && c.Out.Ret == 1 {
			silent++
		}
	}
	if silent == 0 || silent == 200 {
		t.Errorf("9x FailMaybeSilent silent count = %d", silent)
	}
}

func TestUserWriteSharedArena(t *testing.T) {
	// A 9x user write into a mapped system-arena page succeeds.
	c := newCall(t, kern.Arch9x, n9xTraits)
	a, err := c.P.AS.AllocSystem(4096, mem.ProtRW)
	if err != nil {
		t.Fatal(err)
	}
	if !c.UserWrite(a, []byte("scribble")) {
		t.Fatalf("9x write to mapped system arena failed: %+v", c.Out)
	}
	if c.K.Crashed() {
		t.Error("benign scribble crashed the machine")
	}
	// On NT, the same address is simply not mapped: access violation.
	c2 := newCall(t, kern.ArchNT, ntTraits)
	if c2.UserWrite(0x80002000, []byte("scribble")) {
		t.Fatal("NT write to system arena succeeded")
	}
	if c2.Out.Exception != ExcAccessViolation {
		t.Errorf("NT system-arena write: %+v", c2.Out)
	}
}

func TestArgAccessors(t *testing.T) {
	c := newCall(t, kern.ArchNT, ntTraits)
	c.Args = []Arg{Int(-1), Ptr(0x1000), HandleArg(0xFFFFFFFE), Float(2.5)}
	if c.Int(0) != -1 || c.U32(0) != 0xFFFFFFFF {
		t.Error("Int/U32 accessors")
	}
	if c.PtrArg(1) != 0x1000 {
		t.Error("PtrArg accessor")
	}
	if c.HandleAt(2) != kern.PseudoThread {
		t.Error("HandleAt accessor")
	}
	if c.FloatArg(3) != 2.5 {
		t.Error("FloatArg accessor")
	}
	// Out-of-range arguments read as zero words.
	if c.Int(99) != 0 || c.PtrArg(-1) != 0 {
		t.Error("out-of-range args should be zero")
	}
	// Integer reinterpreted as float.
	if c.FloatArg(0) != -1 {
		t.Error("int-as-float reinterpretation")
	}
}

func TestCopyInStringWalks(t *testing.T) {
	c := newCall(t, kern.ArchUnix, unixTraits)
	a, _ := c.P.AS.Alloc(64, mem.ProtRW)
	_ = c.P.AS.WriteCString(a, "/bl/readable.txt")
	s, ok := c.CopyInString(0, a)
	if !ok || s != "/bl/readable.txt" {
		t.Errorf("CopyInString = %q, ok=%v", s, ok)
	}
	if _, ok := c.CopyInString(0, 0); ok {
		t.Error("CopyInString(NULL) succeeded")
	}
	if c.Out.Err != EFAULT {
		t.Errorf("CopyInString(NULL) errno = %d", c.Out.Err)
	}
}

func TestDivideByZeroPersonality(t *testing.T) {
	c := newCall(t, kern.ArchUnix, unixTraits)
	c.DivideByZero()
	if c.Out.Exception != SIGFPE || !c.Out.IsSignal {
		t.Errorf("unix: %+v", c.Out)
	}
	c2 := newCall(t, kern.ArchNT, ntTraits)
	c2.DivideByZero()
	if c2.Out.Exception != ExcIntDivideByZero {
		t.Errorf("windows: %+v", c2.Out)
	}
}

func TestOutcomeString(t *testing.T) {
	tests := []struct {
		o    Outcome
		want string
	}{
		{Outcome{Crashed: true, CrashReason: "bsod"}, "CATASTROPHIC: bsod"},
		{Outcome{Hung: true}, "hang"},
		{Outcome{Exception: 11, IsSignal: true}, "signal 11"},
	}
	for _, tt := range tests {
		if got := tt.o.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}
