// Package api defines the calling convention shared by the simulated
// Win32, POSIX and C-library surfaces: typed argument words, the call
// frame, simulated structured exceptions and signals, error reporting
// (GetLastError / errno), and the policy-aware memory-access helpers that
// implement each OS family's validation architecture.
//
// Implementations never panic and never return Go errors to callers;
// every abnormal outcome is recorded on the call frame's Outcome, which
// the Ballista harness classifies on the CRASH scale.
package api

import (
	"fmt"

	"ballista/internal/sim/kern"
	"ballista/internal/sim/mem"
)

// ArgKind tags how an argument word was constructed.  At the machine
// level every argument is just bits — a handle can arrive where a pointer
// was expected, exactly as in the paper's tests — so all getters are
// reinterpreting accessors.
type ArgKind int

// Argument kinds.
const (
	ArgInt ArgKind = iota
	ArgPtr
	ArgHandle
	ArgFloat
)

// Arg is one argument word.
type Arg struct {
	Kind ArgKind
	I    int64
	F    float64
}

// Int constructs an integer argument.
func Int(v int64) Arg { return Arg{Kind: ArgInt, I: v} }

// Ptr constructs a pointer argument.
func Ptr(a mem.Addr) Arg { return Arg{Kind: ArgPtr, I: int64(uint32(a))} }

// Handle constructs a handle argument.
func HandleArg(h kern.Handle) Arg { return Arg{Kind: ArgHandle, I: int64(uint32(h))} }

// Float constructs a floating-point argument.
func Float(v float64) Arg { return Arg{Kind: ArgFloat, F: v} }

// Traits captures the per-OS behaviour knobs the API implementations
// consult.  It is assembled by the osprofile package.
type Traits struct {
	// OSName salts deterministic per-function policy decisions so sibling
	// variants (95 vs 98 vs 98 SE) differ slightly, as observed.
	OSName string
	// Unix selects errno-style error reporting and POSIX signals; false
	// selects GetLastError and Win32 structured exceptions.
	Unix bool
	// ProbeKernel: system calls probe user pointers (NT/2000/Linux).
	ProbeKernel bool
	// SharedArena: wild user-mode writes into the mapped system arena
	// succeed and corrupt shared state (Win9x/CE) instead of faulting.
	SharedArena bool
	// StubErrorBP / StubSilentBP partition, in basis points of a
	// deterministic per-site hash, how a non-probing kernel's user-mode
	// stubs respond to an invalid pointer: return an error code, silently
	// report success, or (the remainder) pass it through and take an
	// access violation.  These reproduce the Win9x Silent-failure rates.
	StubErrorBP, StubSilentBP uint32
	// WrongCodeBP is the per-function probability (basis points) that an
	// error return carries an incorrect GetLastError code — the CRASH
	// scale's Hindering failures, which the paper observed on the 9x
	// family but could only classify manually.
	WrongCodeBP uint32

	// C-library personality.
	CLibValidatesStreams bool // msvcrt checks FILE magic; glibc dereferences
	CLibValidatesHeap    bool // msvcrt validates free/realloc arguments
	StrWordReads         bool // msvcrt string intrinsics read a word past the NUL
	CTypeBoundsChecked   bool // Windows bounds-checks ctype table lookups
	StdinBlocks          bool // reading the console blocks (glibc pipe model)
	MathSEH              bool // msvcrt raises SEH on FP domain errors
	StdioRawKernel       bool // CE CRT passes stream buffers to kernel unprobed
	WidePreferred        bool // CE: UNICODE variants are the default surface
}

// DefectMech is the mechanism of a per-function robustness defect from
// the paper's Table 3.
type DefectMech int

// Defect mechanisms.
const (
	// MechRawOut: the kernel writes an output structure through the
	// parameter without probing (immediate Catastrophic on bad pointers
	// for SharedArena machines).
	MechRawOut DefectMech = iota
	// MechRawIn: the kernel reads a structure through the parameter
	// without probing.
	MechRawIn
	// MechCorrupt: the trigger corrupts kernel state by Amount; small
	// amounts only crash after accumulation across a campaign — the
	// paper's harness-only "*" failures.
	MechCorrupt
)

// DefectSpec describes one Table 3 defect as bound to the current call.
type DefectSpec struct {
	Mech DefectMech
	// Param is the argument index the raw mechanisms apply to.
	Param int
	// Amount is the corruption added per MechCorrupt trigger.
	Amount int
	// WideOnly restricts the defect to the UNICODE variant (CE _tcsncpy).
	WideOnly bool
}

// Outcome records everything observable about one call execution.
type Outcome struct {
	// Completed: the call returned to its caller.
	Completed bool
	Ret       int64
	RetF      float64
	// Err is errno (Unix) or the GetLastError value; ErrReported says the
	// call signalled an error to its caller.
	Err         uint32
	ErrReported bool
	// Exception is a Win32 SEH code or (IsSignal) a POSIX signal number
	// that was not handled — an Abort in CRASH terms.
	Exception uint32
	IsSignal  bool
	// Hung: the call can never return (Restart in CRASH terms).
	Hung bool
	// Crashed: the machine went down during the call (Catastrophic).
	Crashed     bool
	CrashReason string
}

// Failed reports whether any abnormal outcome occurred (exception, hang,
// or crash).
func (o *Outcome) Failed() bool { return o.Exception != 0 || o.Hung || o.Crashed }

// String summarizes the outcome for logs.
func (o *Outcome) String() string {
	switch {
	case o.Crashed:
		return "CATASTROPHIC: " + o.CrashReason
	case o.Hung:
		return "hang"
	case o.Exception != 0 && o.IsSignal:
		return fmt.Sprintf("signal %d", o.Exception)
	case o.Exception != 0:
		return fmt.Sprintf("exception %#08x", o.Exception)
	case o.ErrReported:
		return fmt.Sprintf("error return (err=%d, ret=%d)", o.Err, o.Ret)
	default:
		return fmt.Sprintf("ok (ret=%d)", o.Ret)
	}
}

// Call is one in-flight API call: the machine, the calling process, the
// argument words, the OS traits, any Table 3 defect bound to this
// function, and the accumulating outcome.
type Call struct {
	K      *kern.Kernel
	P      *kern.Process
	Name   string
	Args   []Arg
	Traits Traits
	Def    *DefectSpec
	// Wide marks the UNICODE variant of a paired C function.
	Wide bool

	Out Outcome

	done bool
}

// Done reports whether the call has reached a terminal outcome and the
// implementation should unwind.
func (c *Call) Done() bool { return c.done }

// Arg returns argument i, or a zero word when the caller passed fewer
// arguments (reading past the end of a C argument list yields garbage;
// zero is the deterministic stand-in).
func (c *Call) Arg(i int) Arg {
	if i < 0 || i >= len(c.Args) {
		return Arg{}
	}
	return c.Args[i]
}

// Int returns argument i as a signed 32-bit integer value.
func (c *Call) Int(i int) int32 { return int32(uint32(c.Arg(i).I)) }

// Long returns argument i as int64 (two words on a real 32-bit ABI; one
// here).
func (c *Call) Long(i int) int64 { return c.Arg(i).I }

// U32 returns argument i as an unsigned 32-bit value.
func (c *Call) U32(i int) uint32 { return uint32(c.Arg(i).I) }

// PtrArg returns argument i reinterpreted as an address.
func (c *Call) PtrArg(i int) mem.Addr { return mem.Addr(uint32(c.Arg(i).I)) }

// HandleAt returns argument i reinterpreted as a handle.
func (c *Call) HandleAt(i int) kern.Handle { return kern.Handle(uint32(c.Arg(i).I)) }

// FloatArg returns argument i as a float64.  An integer word passed where
// a double was expected reinterprets its bits' numeric value, which is
// how Ballista's type-based tests hit math functions.
func (c *Call) FloatArg(i int) float64 {
	a := c.Arg(i)
	if a.Kind == ArgFloat {
		return a.F
	}
	return float64(a.I)
}

// --- terminal outcomes ---

// Ret completes the call with a return value and no error indication.
func (c *Call) Ret(v int64) {
	if c.done {
		return
	}
	c.Out.Completed = true
	c.Out.Ret = v
	c.done = true
}

// RetF completes the call with a floating-point result.
func (c *Call) RetF(v float64) {
	if c.done {
		return
	}
	c.Out.Completed = true
	c.Out.RetF = v
	c.done = true
}

// FailWin completes the call Win32-style: returns FALSE/0 and sets
// GetLastError.  On OS variants with WrongCodeBP set, a deterministic
// per-function fraction of error sites misreport the code (Hindering).
func (c *Call) FailWin(code uint32) {
	if c.done {
		return
	}
	code = c.maybeWrongCode(code)
	c.P.LastError = code
	c.Out.Completed = true
	c.Out.Ret = 0
	c.Out.Err = code
	c.Out.ErrReported = true
	c.done = true
}

// FailWinRet is FailWin with an explicit return value (e.g.
// INVALID_HANDLE_VALUE or HFILE_ERROR).
func (c *Call) FailWinRet(ret int64, code uint32) {
	if c.done {
		return
	}
	code = c.maybeWrongCode(code)
	c.P.LastError = code
	c.Out.Completed = true
	c.Out.Ret = ret
	c.Out.Err = code
	c.Out.ErrReported = true
	c.done = true
}

// FailErrno completes the call POSIX-style: returns -1 and sets errno.
func (c *Call) FailErrno(errno uint32) {
	if c.done {
		return
	}
	c.P.Errno = int32(errno)
	c.Out.Completed = true
	c.Out.Ret = -1
	c.Out.Err = errno
	c.Out.ErrReported = true
	c.done = true
}

// FailErrnoRet is FailErrno with an explicit return value (e.g. NULL or
// EOF).
func (c *Call) FailErrnoRet(ret int64, errno uint32) {
	if c.done {
		return
	}
	c.P.Errno = int32(errno)
	c.Out.Completed = true
	c.Out.Ret = ret
	c.Out.Err = errno
	c.Out.ErrReported = true
	c.done = true
}

// Fail reports an error in the current OS personality's native style.
func (c *Call) Fail(winCode, errnoCode uint32) {
	if c.Traits.Unix {
		c.FailErrno(errnoCode)
	} else {
		c.FailWin(winCode)
	}
}

// Raise terminates the call with an unhandled Win32 structured exception.
func (c *Call) Raise(code uint32) {
	if c.done {
		return
	}
	c.Out.Exception = code
	c.Out.IsSignal = false
	c.done = true
}

// Signal terminates the call with an unhandled POSIX signal.
func (c *Call) Signal(sig uint32) {
	if c.done {
		return
	}
	c.Out.Exception = sig
	c.Out.IsSignal = true
	c.done = true
}

// Hang marks the call as never returning.
func (c *Call) Hang() {
	if c.done {
		return
	}
	c.Out.Hung = true
	c.done = true
}

// CrashedOut marks the call as having taken the machine down.
func (c *Call) CrashedOut() {
	if c.done {
		return
	}
	c.Out.Crashed = true
	c.Out.CrashReason = c.K.CrashReason()
	c.done = true
}

// MemFault converts a user-mode memory fault into the personality's
// abort mechanism: SIGSEGV (SIGBUS for kernel-range touches) on Unix,
// EXCEPTION_ACCESS_VIOLATION on Windows.
func (c *Call) MemFault(f *mem.Fault) {
	if c.Traits.Unix {
		if f.Kind == mem.FaultKernelRange {
			c.Signal(SIGBUS)
			return
		}
		c.Signal(SIGSEGV)
		return
	}
	c.Raise(ExcAccessViolation)
}
