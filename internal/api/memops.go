package api

import (
	"hash/fnv"
	"strconv"

	"ballista/internal/sim/kern"
	"ballista/internal/sim/mem"
)

// siteBP returns a deterministic value in [0, 10000) for a validation
// site, salted by OS name and function name.  Non-probing kernels (the
// Win9x/CE families) use it to decide how a given function's user-mode
// stub responds to an invalid pointer: different functions genuinely had
// different stubs, and sibling OS versions (95 / 98 / 98 SE) shipped
// slightly different stub sets — the salt reproduces that diversity
// deterministically.
func (c *Call) siteBP(site string, param int) uint32 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(c.Traits.OSName))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(c.Name))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(site))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(strconv.Itoa(param)))
	return h.Sum32() % 10000
}

// maybeWrongCode substitutes an incorrect error code at a deterministic
// per-function, per-code subset of error sites when the OS carries a
// WrongCodeBP budget (the 9x family).  ERROR_INVALID_FUNCTION is the
// classic wrong answer Win9x handed back.
func (c *Call) maybeWrongCode(code uint32) uint32 {
	if c.Traits.WrongCodeBP == 0 || code == 0 {
		return code
	}
	if c.siteBP("errcode", int(code)) < c.Traits.WrongCodeBP {
		if code == ErrorInvalidFunction {
			return ErrorInvalidParameter
		}
		return ErrorInvalidFunction
	}
	return code
}

type stubAction int

const (
	stubError stubAction = iota
	stubSilent
	stubPassthrough
)

func (c *Call) stubPolicy(site string, param int) stubAction {
	bp := c.siteBP(site, param)
	switch {
	case bp < c.Traits.StubErrorBP:
		return stubError
	case bp < c.Traits.StubErrorBP+c.Traits.StubSilentBP:
		return stubSilent
	default:
		return stubPassthrough
	}
}

func (c *Call) defectRaw(param int, mech DefectMech) bool {
	d := c.Def
	if d == nil || d.Mech != mech || d.Param != param {
		return false
	}
	if d.WideOnly && !c.Wide {
		return false
	}
	return true
}

// DefectCorrupt applies a MechCorrupt defect from Table 3: when this
// function carries one and the implementation observed the triggering
// exceptional input, kernel state takes Amount damage.  It returns true
// when the machine crashed (the implementation must then unwind).
func (c *Call) DefectCorrupt(triggered bool) bool {
	d := c.Def
	if d == nil || d.Mech != MechCorrupt || !triggered {
		return false
	}
	if d.WideOnly && !c.Wide {
		return false
	}
	c.K.Corrupt(d.Amount, c.Name)
	if c.K.Crashed() {
		c.CrashedOut()
		return true
	}
	return false
}

// --- user-mode access (library code running inside the process) ---

// UserRead reads size bytes of user memory from library code.  A fault
// aborts the call (SIGSEGV / access violation).
func (c *Call) UserRead(addr mem.Addr, size uint32) ([]byte, bool) {
	b, f := c.P.AS.Read(addr, size)
	if f != nil {
		c.MemFault(f)
		return nil, false
	}
	return b, true
}

// UserWrite writes user memory from library code.  On a shared-arena
// machine a successful write that lands in the system arena scribbles
// shared pages (negligible accumulation per hit).
func (c *Call) UserWrite(addr mem.Addr, data []byte) bool {
	f := c.P.AS.Write(addr, data)
	if f != nil {
		c.MemFault(f)
		return false
	}
	if c.Traits.SharedArena && mem.RegionOf(addr) == mem.RegionSystem {
		c.K.Corrupt(kern.CorruptionScratch, c.Name)
		if c.K.Crashed() {
			c.CrashedOut()
			return false
		}
	}
	return true
}

// UserReadCString walks a NUL-terminated string in user memory.
func (c *Call) UserReadCString(addr mem.Addr) (string, bool) {
	s, f := c.P.AS.CString(addr)
	if f != nil {
		c.MemFault(f)
		return "", false
	}
	return s, true
}

// UserReadWString walks a NUL-terminated UTF-16 string in user memory.
func (c *Call) UserReadWString(addr mem.Addr) ([]uint16, bool) {
	s, f := c.P.AS.WString(addr)
	if f != nil {
		c.MemFault(f)
		return nil, false
	}
	return s, true
}

// UserString reads a narrow or wide string according to the call's Wide
// flag, returning it as a Go string.
func (c *Call) UserString(addr mem.Addr) (string, bool) {
	if c.Wide {
		u, ok := c.UserReadWString(addr)
		if !ok {
			return "", false
		}
		b := make([]rune, len(u))
		for i, cu := range u {
			b[i] = rune(cu)
		}
		return string(b), true
	}
	return c.UserReadCString(addr)
}

// --- kernel-boundary access (system calls) ---

// CopyIn reads a caller-supplied input structure at the system-call
// boundary.  The path taken depends on the OS architecture and on any
// Table 3 defect bound to this parameter:
//
//   - defect MechRawIn: the kernel dereferences raw — Catastrophic on a
//     shared-arena machine when the pointer is invalid;
//   - probing kernels: probe failure yields EFAULT (Unix) or a thrown
//     access violation (NT family);
//   - non-probing kernels: valid pointers are read normally; invalid ones
//     hit the function's stub policy (error return, silent zeros, or an
//     unhandled access violation).
func (c *Call) CopyIn(param int, addr mem.Addr, size uint32) ([]byte, bool) {
	if c.defectRaw(param, MechRawIn) {
		b, res := c.K.RawRead(c.P.AS, addr, size)
		switch res {
		case kern.RawCrashed:
			c.CrashedOut()
			return nil, false
		case kern.RawFault:
			c.MemFault(&mem.Fault{Addr: addr, Kind: mem.FaultUnmapped})
			return nil, false
		}
		return b, true
	}
	if c.Traits.ProbeKernel {
		if !c.K.Probe(c.P.AS, addr, size, false) {
			if c.Traits.Unix {
				c.FailErrno(EFAULT)
			} else {
				c.Raise(ExcAccessViolation)
			}
			return nil, false
		}
		b, _ := c.P.AS.Read(addr, size)
		return b, true
	}
	// Non-probing stub path.
	if b, f := c.P.AS.Read(addr, size); f == nil {
		return b, true
	}
	switch c.stubPolicy("in", param) {
	case stubError:
		c.Fail(ErrorInvalidParameter, EFAULT)
		return nil, false
	case stubSilent:
		return make([]byte, size), true
	default:
		c.MemFault(&mem.Fault{Addr: addr, Kind: mem.FaultUnmapped})
		return nil, false
	}
}

// CopyOut writes a result structure through a caller-supplied output
// pointer at the system-call boundary, with the same architecture- and
// defect-dependent paths as CopyIn.  A silent stub outcome reports
// success without writing — the mechanism behind the Win9x family's
// Silent failure rates.
func (c *Call) CopyOut(param int, addr mem.Addr, data []byte) bool {
	if c.defectRaw(param, MechRawOut) {
		switch c.K.RawWrite(c.P.AS, addr, data) {
		case kern.RawCrashed:
			c.CrashedOut()
			return false
		case kern.RawFault:
			c.MemFault(&mem.Fault{Addr: addr, Write: true, Kind: mem.FaultUnmapped})
			return false
		}
		if c.K.Crashed() {
			c.CrashedOut()
			return false
		}
		return true
	}
	if c.Traits.ProbeKernel {
		if !c.K.Probe(c.P.AS, addr, uint32(len(data)), true) {
			if c.Traits.Unix {
				c.FailErrno(EFAULT)
			} else {
				c.Raise(ExcAccessViolation)
			}
			return false
		}
		_ = c.P.AS.Write(addr, data)
		return true
	}
	// Non-probing stub path: a write that succeeds against mapped memory
	// goes through, even when it lands in the shared system arena.
	if f := c.P.AS.Write(addr, data); f == nil {
		if c.Traits.SharedArena && mem.RegionOf(addr) == mem.RegionSystem {
			c.K.Corrupt(kern.CorruptionScratch, c.Name)
			if c.K.Crashed() {
				c.CrashedOut()
				return false
			}
		}
		return true
	}
	switch c.stubPolicy("out", param) {
	case stubError:
		c.Fail(ErrorInvalidParameter, EFAULT)
		return false
	case stubSilent:
		return true // reported as written; nothing was
	default:
		c.MemFault(&mem.Fault{Addr: addr, Write: true, Kind: mem.FaultUnmapped})
		return false
	}
}

// CopyInString reads a NUL-terminated path or name argument at the
// system-call boundary.
func (c *Call) CopyInString(param int, addr mem.Addr) (string, bool) {
	if c.Traits.ProbeKernel {
		if !c.K.Probe(c.P.AS, addr, 1, false) {
			if c.Traits.Unix {
				c.FailErrno(EFAULT)
			} else {
				c.Raise(ExcAccessViolation)
			}
			return "", false
		}
		s, f := c.P.AS.CString(addr)
		if f != nil {
			// The string ran off the end of its mapping mid-walk.
			if c.Traits.Unix {
				c.FailErrno(EFAULT)
				return "", false
			}
			c.Raise(ExcAccessViolation)
			return "", false
		}
		return s, true
	}
	if s, f := c.P.AS.CString(addr); f == nil {
		return s, true
	}
	switch c.stubPolicy("str", param) {
	case stubError:
		c.Fail(ErrorInvalidName, EFAULT)
		return "", false
	case stubSilent:
		return "", true
	default:
		c.MemFault(&mem.Fault{Addr: addr, Kind: mem.FaultUnmapped})
		return "", false
	}
}

// DivideByZero raises the personality's integer-divide trap.
func (c *Call) DivideByZero() {
	if c.Traits.Unix {
		c.Signal(SIGFPE)
		return
	}
	c.Raise(ExcIntDivideByZero)
}

// FailMaybeSilent reports a detected-invalid argument the way the OS
// family does: probing kernels return the error code; the Win9x family's
// stubs sometimes report success without doing the work — the paper's
// Silent failure mechanism for non-pointer arguments (e.g. CloseHandle
// returning TRUE for a garbage handle).
func (c *Call) FailMaybeSilent(param int, code uint32, silentRet int64) {
	if !c.Traits.ProbeKernel && c.stubPolicy("val", param) == stubSilent {
		c.Ret(silentRet)
		return
	}
	if c.Traits.Unix {
		c.FailErrno(code)
		return
	}
	c.FailWin(code)
}
