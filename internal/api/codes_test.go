package api

import "testing"

// TestScarcityCodeValues pins every scarcity constant to its winerror.h
// / errno value, so a typo'd constant cannot silently shift what the
// graceful-degradation oracle accepts.
func TestScarcityCodeValues(t *testing.T) {
	tests := []struct {
		name string
		got  uint32
		want uint32
	}{
		{"ERROR_TOO_MANY_OPEN_FILES", ErrorTooManyOpenFiles, 4},
		{"ERROR_NOT_ENOUGH_MEMORY", ErrorNotEnoughMemory, 8},
		{"ERROR_OUTOFMEMORY", ErrorOutOfMemory, 14},
		{"ERROR_NO_MORE_FILES", ErrorNoMoreFiles, 18},
		{"ERROR_HANDLE_DISK_FULL", ErrorHandleDiskFull, 39},
		{"ERROR_DISK_FULL", ErrorDiskFull, 112},
		{"ERROR_NO_MORE_SEARCH_HANDLES", ErrorNoMoreSearchHandles, 113},
		{"ERROR_NO_SYSTEM_RESOURCES", ErrorNoSystemResources, 1450},
		{"EAGAIN", EAGAIN, 11},
		{"ENOMEM", ENOMEM, 12},
		{"ENFILE", ENFILE, 23},
		{"EMFILE", EMFILE, 24},
		{"ENOSPC", ENOSPC, 28},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if tc.got != tc.want {
				t.Errorf("%s = %d, want %d", tc.name, tc.got, tc.want)
			}
		})
	}
}

// TestScarcityCodeSets checks membership both ways: every documented
// scarcity answer is accepted, and the codes a lying or confused
// implementation would plausibly return are not.
func TestScarcityCodeSets(t *testing.T) {
	win := ScarcityCodesWin()
	posix := ScarcityCodesPOSIX()

	winTests := []struct {
		name string
		code uint32
		want bool
	}{
		{"too_many_open_files", ErrorTooManyOpenFiles, true},
		{"not_enough_memory", ErrorNotEnoughMemory, true},
		{"outofmemory", ErrorOutOfMemory, true},
		{"no_more_files", ErrorNoMoreFiles, true},
		{"handle_disk_full", ErrorHandleDiskFull, true},
		{"disk_full", ErrorDiskFull, true},
		{"no_more_search_handles", ErrorNoMoreSearchHandles, true},
		{"no_system_resources", ErrorNoSystemResources, true},
		{"success_is_not_scarcity", ErrorSuccess, false},
		{"invalid_parameter_is_not_scarcity", ErrorInvalidParameter, false},
		{"invalid_handle_is_not_scarcity", ErrorInvalidHandle, false},
		{"access_denied_is_not_scarcity", ErrorAccessDenied, false},
	}
	for _, tc := range winTests {
		t.Run("win/"+tc.name, func(t *testing.T) {
			if win[tc.code] != tc.want {
				t.Errorf("ScarcityCodesWin()[%d] = %v, want %v", tc.code, win[tc.code], tc.want)
			}
		})
	}

	posixTests := []struct {
		name string
		code uint32
		want bool
	}{
		{"eagain", EAGAIN, true},
		{"enomem", ENOMEM, true},
		{"enfile", ENFILE, true},
		{"emfile", EMFILE, true},
		{"enospc", ENOSPC, true},
		{"einval_is_not_scarcity", EINVAL, false},
		{"ebadf_is_not_scarcity", EBADF, false},
		{"eio_is_not_scarcity", EIO, false},
	}
	for _, tc := range posixTests {
		t.Run("posix/"+tc.name, func(t *testing.T) {
			if posix[tc.code] != tc.want {
				t.Errorf("ScarcityCodesPOSIX()[%d] = %v, want %v", tc.code, posix[tc.code], tc.want)
			}
		})
	}

	// The sets are fresh maps per call: a caller mutating its copy must
	// not poison the oracle for everyone else.
	win[ErrorInvalidParameter] = true
	if ScarcityCodesWin()[ErrorInvalidParameter] {
		t.Error("ScarcityCodesWin returns a shared map; mutation leaked")
	}
	posix[EINVAL] = true
	if ScarcityCodesPOSIX()[EINVAL] {
		t.Error("ScarcityCodesPOSIX returns a shared map; mutation leaked")
	}
}
