package api

// Win32 structured exception codes (values match winnt.h).
const (
	ExcAccessViolation       uint32 = 0xC0000005
	ExcDatatypeMisalignment  uint32 = 0x80000002
	ExcArrayBoundsExceeded   uint32 = 0xC000008C
	ExcFltDenormalOperand    uint32 = 0xC000008D
	ExcFltDivideByZero       uint32 = 0xC000008E
	ExcFltInvalidOperation   uint32 = 0xC0000090
	ExcFltOverflow           uint32 = 0xC0000091
	ExcIntDivideByZero       uint32 = 0xC0000094
	ExcIntOverflow           uint32 = 0xC0000095
	ExcStackOverflow         uint32 = 0xC00000FD
	ExcInvalidHandle         uint32 = 0xC0000008
	ExcIllegalInstruction    uint32 = 0xC000001D
	ExcInPageError           uint32 = 0xC0000006
	ExcNoncontinuable        uint32 = 0xC0000025
	ExcPrivilegedInstruction uint32 = 0xC0000096
)

// POSIX signal numbers (Linux x86 values).
const (
	SIGHUP  uint32 = 1
	SIGINT  uint32 = 2
	SIGQUIT uint32 = 3
	SIGILL  uint32 = 4
	SIGABRT uint32 = 6
	SIGBUS  uint32 = 7
	SIGFPE  uint32 = 8
	SIGKILL uint32 = 9
	SIGSEGV uint32 = 11
	SIGPIPE uint32 = 13
	SIGTERM uint32 = 15
	SIGCHLD uint32 = 17
)

// Win32 error codes for GetLastError (values match winerror.h).
const (
	ErrorSuccess            uint32 = 0
	ErrorInvalidFunction    uint32 = 1
	ErrorFileNotFound       uint32 = 2
	ErrorPathNotFound       uint32 = 3
	ErrorTooManyOpenFiles   uint32 = 4
	ErrorAccessDenied       uint32 = 5
	ErrorInvalidHandle      uint32 = 6
	ErrorNotEnoughMemory    uint32 = 8
	ErrorInvalidBlock       uint32 = 9
	ErrorBadEnvironment     uint32 = 10
	ErrorInvalidAccess      uint32 = 12
	ErrorInvalidData        uint32 = 13
	ErrorOutOfMemory        uint32 = 14
	ErrorWriteProtect       uint32 = 19
	ErrorNotReady           uint32 = 21
	ErrorBadLength          uint32 = 24
	ErrorWriteFault         uint32 = 29
	ErrorReadFault          uint32 = 30
	ErrorSharingViolation   uint32 = 32
	ErrorLockViolation      uint32 = 33
	ErrorHandleEOF          uint32 = 38
	ErrorNotSupported       uint32 = 50
	ErrorFileExists         uint32 = 80
	ErrorInvalidParameter   uint32 = 87
	ErrorBrokenPipe         uint32 = 109
	ErrorOpenFailed         uint32 = 110
	ErrorBufferOverflow     uint32 = 111
	ErrorDiskFull           uint32 = 112
	ErrorCallNotImplemented uint32 = 120
	ErrorInsufficientBuffer uint32 = 122
	ErrorInvalidName        uint32 = 123
	ErrorNegativeSeek       uint32 = 131
	ErrorDirNotEmpty        uint32 = 145
	ErrorBadPathname        uint32 = 161
	ErrorBusy               uint32 = 170
	ErrorAlreadyExists      uint32 = 183
	ErrorEnvVarNotFound     uint32 = 203
	ErrorFilenameExcedRange uint32 = 206
	ErrorMoreData           uint32 = 234
	ErrorNoMoreItems        uint32 = 259
	ErrorInvalidAddress     uint32 = 487
	ErrorArithmeticOverflow uint32 = 534
	ErrorNoaccess           uint32 = 998
	ErrorNotAllAssigned     uint32 = 1300
)

// WaitTimeoutCode is the WAIT_TIMEOUT return value.
const WaitTimeoutCode uint32 = 258

// WaitFailed is the WAIT_FAILED return value.
const WaitFailed uint32 = 0xFFFFFFFF

// WaitObject0 is the WAIT_OBJECT_0 return value.
const WaitObject0 uint32 = 0

// POSIX errno values (Linux x86 values).
const (
	EPERM        uint32 = 1
	ENOENT       uint32 = 2
	ESRCH        uint32 = 3
	EINTR        uint32 = 4
	EIO          uint32 = 5
	ENXIO        uint32 = 6
	E2BIG        uint32 = 7
	ENOEXEC      uint32 = 8
	EBADF        uint32 = 9
	ECHILD       uint32 = 10
	EAGAIN       uint32 = 11
	ENOMEM       uint32 = 12
	EACCES       uint32 = 13
	EFAULT       uint32 = 14
	ENOTBLK      uint32 = 15
	EBUSY        uint32 = 16
	EEXIST       uint32 = 17
	EXDEV        uint32 = 18
	ENODEV       uint32 = 19
	ENOTDIR      uint32 = 20
	EISDIR       uint32 = 21
	EINVAL       uint32 = 22
	ENFILE       uint32 = 23
	EMFILE       uint32 = 24
	ENOTTY       uint32 = 25
	ETXTBSY      uint32 = 26
	EFBIG        uint32 = 27
	ENOSPC       uint32 = 28
	ESPIPE       uint32 = 29
	EROFS        uint32 = 30
	EMLINK       uint32 = 31
	EPIPE        uint32 = 32
	EDOM         uint32 = 33
	ERANGE       uint32 = 34
	EDEADLK      uint32 = 35
	ENAMETOOLONG uint32 = 36
	ENOLCK       uint32 = 37
	ENOSYS       uint32 = 38
	ENOTEMPTY    uint32 = 39
)

// POSIX socket errno values (Linux x86 values).
const (
	ENOTSOCK        uint32 = 88
	EDESTADDRREQ    uint32 = 89
	EMSGSIZE        uint32 = 90
	EPROTOTYPE      uint32 = 91
	ENOPROTOOPT     uint32 = 92
	EPROTONOSUPPORT uint32 = 93
	EOPNOTSUPP      uint32 = 95
	EAFNOSUPPORT    uint32 = 97
	EADDRINUSE      uint32 = 98
	EADDRNOTAVAIL   uint32 = 99
	ENETUNREACH     uint32 = 101
	ECONNRESET      uint32 = 104
	ENOBUFS         uint32 = 105
	EISCONN         uint32 = 106
	ENOTCONN        uint32 = 107
	ETIMEDOUT       uint32 = 110
	ECONNREFUSED    uint32 = 111
)

// Winsock error codes for WSAGetLastError (winsock.h values: the BSD
// errno plus the WSABASEERR 10000 bias, frozen since Winsock 1.1 so
// they are identical across the 95/98/NT/2000/CE profiles).
const (
	WSAEINTR           uint32 = 10004
	WSAEBADF           uint32 = 10009
	WSAEFAULT          uint32 = 10014
	WSAEINVAL          uint32 = 10022
	WSAEMFILE          uint32 = 10024
	WSAEWOULDBLOCK     uint32 = 10035
	WSAEMSGSIZE        uint32 = 10040
	WSAENOTSOCK        uint32 = 10038
	WSAEPROTOTYPE      uint32 = 10041
	WSAEPROTONOSUPPORT uint32 = 10043
	WSAEOPNOTSUPP      uint32 = 10045
	WSAEAFNOSUPPORT    uint32 = 10047
	WSAEADDRINUSE      uint32 = 10048
	WSAEADDRNOTAVAIL   uint32 = 10049
	WSAENETUNREACH     uint32 = 10051
	WSAECONNRESET      uint32 = 10054
	WSAENOBUFS         uint32 = 10055
	WSAEISCONN         uint32 = 10056
	WSAENOTCONN        uint32 = 10057
	WSAESHUTDOWN       uint32 = 10058
	WSAETIMEDOUT       uint32 = 10060
	WSAECONNREFUSED    uint32 = 10061
)

// Additional Win32 error codes used by the API surface.
const (
	ErrorNoMoreFiles  uint32 = 18
	ErrorNotLocked    uint32 = 158
	ErrorProcNotFound uint32 = 127
	ErrorNotOwner     uint32 = 288
	ErrorTooManyPosts uint32 = 298
	ErrorStillActive  uint32 = 259
)

// Win32 resource-scarcity codes (winerror.h values) the scarce sweep's
// graceful-degradation oracle accepts.  Gaps found by the PR-9 audit:
// the surface previously had no way to report a full handle table
// (39/113/1450) distinctly from bad arguments.
const (
	// ErrorHandleDiskFull is the disk-full variant raised when the
	// allocation that failed was a directory/handle structure rather
	// than file data (ERROR_HANDLE_DISK_FULL).
	ErrorHandleDiskFull uint32 = 39
	// ErrorNoMoreSearchHandles: the FindFirstFile search-handle table
	// is exhausted (ERROR_NO_MORE_SEARCH_HANDLES).
	ErrorNoMoreSearchHandles uint32 = 113
	// ErrorNoSystemResources: generic kernel-object scarcity
	// (ERROR_NO_SYSTEM_RESOURCES), the NT-line catch-all for a
	// saturated handle table.
	ErrorNoSystemResources uint32 = 1450
)

// ScarcityCodesWin is the set of GetLastError values that count as a
// *documented* graceful answer to resource exhaustion on the Win32
// surface.  Anything else returned from a depleted-environment run is a
// wrong-code finding.
func ScarcityCodesWin() map[uint32]bool {
	return map[uint32]bool{
		ErrorTooManyOpenFiles:    true, // 4
		ErrorNotEnoughMemory:     true, // 8
		ErrorOutOfMemory:         true, // 14
		ErrorNoMoreFiles:         true, // 18
		ErrorHandleDiskFull:      true, // 39
		ErrorDiskFull:            true, // 112
		ErrorNoMoreSearchHandles: true, // 113
		ErrorNoSystemResources:   true, // 1450
		WSAEMFILE:                true, // 10024 — socket table full
		WSAENOBUFS:               true, // 10055 — no buffer space / ports
	}
}

// ScarcityCodesPOSIX is the errno equivalent of ScarcityCodesWin.
func ScarcityCodesPOSIX() map[uint32]bool {
	return map[uint32]bool{
		EAGAIN:        true, // 11 — fork: RLIMIT_NPROC reached
		ENOMEM:        true, // 12
		ENFILE:        true, // 23 — system file table full
		EMFILE:        true, // 24 — per-process descriptor table full
		ENOSPC:        true, // 28
		ENOBUFS:       true, // 105 — socket buffer space exhausted
		EADDRNOTAVAIL: true, // 99 — ephemeral-port range depleted
	}
}

// StatusNoMemory is the SEH code HeapAlloc raises under
// HEAP_GENERATE_EXCEPTIONS.
const StatusNoMemory uint32 = 0xC0000017
