package crashsim

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"

	"ballista/internal/osprofile"
)

// reproVersion is the crash-reproducer document schema version.
const reproVersion = 1

// Reproducer is a self-contained, minimized crash-consistency finding:
// the bounded workload, the OS set it was judged on, and each profile's
// verdict (op results, legal-state counts, invariant violations per
// crash point).  The document is everything needed to replay the
// finding byte-for-byte through Evaluate — the golden corpus under
// testdata/corpus/crash/ is a directory of these.
type Reproducer struct {
	V int `json:"v"`
	// Name is an optional short label (corpus files use the file stem).
	Name string `json:"name,omitempty"`
	// Description is optional prose about what the finding shows.
	Description string `json:"description,omitempty"`
	// OSes lists the wire names the workload was judged on; Verdicts
	// must hold an entry for each.
	OSes     []string `json:"oses"`
	Workload Workload `json:"workload"`
	// Verdicts maps OS wire name to the expected verdict.
	Verdicts map[string]*Verdict `json:"verdicts"`
	// Signature is the finding's bug-class signature (informational).
	Signature string `json:"signature,omitempty"`
	// Divergent marks findings whose profiles disagree; Violating marks
	// findings with at least one invariant violation.
	Divergent bool `json:"divergent,omitempty"`
	Violating bool `json:"violating,omitempty"`
}

// NewReproducer packages a finding as a reproducer document.
func NewReproducer(f *Finding, oses []osprofile.OS) *Reproducer {
	rep := &Reproducer{
		V: reproVersion, Workload: f.Workload, Verdicts: f.Verdicts,
		Signature: f.Signature, Divergent: f.Divergent, Violating: f.Violating,
	}
	for _, o := range oses {
		rep.OSes = append(rep.OSes, o.WireName())
	}
	return rep
}

// Reproducers packages a sweep report's findings as reproducer
// documents, in report order.
func (rep *Report) Reproducers() []*Reproducer {
	out := make([]*Reproducer, 0, len(rep.Findings))
	for _, f := range rep.Findings {
		r := &Reproducer{
			V: reproVersion, OSes: rep.OSes, Workload: f.Workload,
			Verdicts: f.Verdicts, Signature: f.Signature,
			Divergent: f.Divergent, Violating: f.Violating,
		}
		out = append(out, r)
	}
	return out
}

// ParseReproducer decodes and sanity-checks a reproducer document.
func ParseReproducer(data []byte) (*Reproducer, error) {
	var rep Reproducer
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("crashsim: bad reproducer JSON: %w", err)
	}
	if rep.V != reproVersion {
		return nil, fmt.Errorf("crashsim: reproducer version %d (want %d)", rep.V, reproVersion)
	}
	if len(rep.Workload.Ops) == 0 {
		return nil, fmt.Errorf("crashsim: reproducer has an empty workload")
	}
	if len(rep.OSes) == 0 {
		return nil, fmt.Errorf("crashsim: reproducer names no OSes")
	}
	for _, name := range rep.OSes {
		if _, ok := osprofile.Parse(name); !ok {
			return nil, fmt.Errorf("crashsim: reproducer names unknown OS %q", name)
		}
		v, ok := rep.Verdicts[name]
		if !ok {
			return nil, fmt.Errorf("crashsim: reproducer has no verdict for %s", name)
		}
		n := len(rep.Workload.Ops)
		if len(v.Results) != n || len(v.States) != n || len(v.Violations) != n {
			return nil, fmt.Errorf("crashsim: reproducer verdict for %s does not cover all %d ops", name, n)
		}
	}
	return &rep, nil
}

// LoadReproducer reads a reproducer document from disk.
func LoadReproducer(path string) (*Reproducer, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep, err := ParseReproducer(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// Marshal renders the document in the corpus's canonical indented form.
func (rep *Reproducer) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteFile stores the document at path in canonical form.
func (rep *Reproducer) WriteFile(path string) error {
	data, err := rep.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Verify re-evaluates the workload on every recorded OS and compares
// the fresh verdicts against the recorded ones.  A nil return means the
// finding still reproduces byte-for-byte.
func (rep *Reproducer) Verify() error {
	var oses []osprofile.OS
	for _, name := range rep.OSes {
		o, ok := osprofile.Parse(name)
		if !ok {
			return fmt.Errorf("unknown OS %q", name)
		}
		oses = append(oses, o)
	}
	f := Evaluate(rep.Workload, DefaultNames(), oses)
	for _, name := range rep.OSes {
		got, want := f.Verdicts[name], rep.Verdicts[name]
		if !reflect.DeepEqual(got.Results, want.Results) {
			return fmt.Errorf("on %s: op results %v, recorded %v", name, got.Results, want.Results)
		}
		if !reflect.DeepEqual(got.States, want.States) {
			return fmt.Errorf("on %s: state counts %v, recorded %v", name, got.States, want.States)
		}
		if !reflect.DeepEqual(got.Violations, want.Violations) {
			return fmt.Errorf("on %s: violations %v, recorded %v", name, got.Violations, want.Violations)
		}
	}
	if f.Divergent != rep.Divergent || f.Violating != rep.Violating {
		return fmt.Errorf("divergent/violating now %v/%v, recorded %v/%v",
			f.Divergent, f.Violating, rep.Divergent, rep.Violating)
	}
	return nil
}
