// Package crashsim is the crash-consistency differential oracle: it
// enumerates bounded filesystem workloads (B3-style, after Mohan et
// al., "Finding Crash-Consistency Bugs with Bounded Black-Box Crash
// Testing"), replays each against the simulated FS of every OS profile,
// enumerates the legal post-crash disk states each profile's durability
// policy admits at every crash point, and checks persistence invariants
// on each state.  Invariant violations and cross-OS divergences become
// minimized JSON reproducers in the golden-corpus format.
package crashsim

import "ballista/internal/osprofile"

// Policy captures one OS profile's on-disk durability semantics — the
// "application persistence model" that bounds which reorderings of the
// persistence log can survive a crash.  The matrices are grounded in
// the filesystems the paper's seven systems actually shipped with:
// ext2 on Linux, FAT on the 9x line, journaled NTFS on NT/2000, and
// the transactional object store on CE.
type Policy struct {
	// RenameReplaces: renaming onto an existing file replaces it (POSIX
	// rename).  Win32 MoveFile instead fails with "already exists".
	RenameReplaces bool
	// Links: hard links exist (ext2, NTFS); FAT and the CE object store
	// have no link counts.
	Links bool
	// AtomicRename: a crashed rename leaves the old entry or the new
	// one, never both or neither.  FAT's delete-then-insert is not
	// atomic; ext2 (same-directory), NTFS and CE are.
	AtomicRename bool
	// OrderedMeta: metadata updates persist in operation order (a
	// journal), so a crash exposes a single prefix cut of the entry
	// log.  ext2 and FAT write metadata back in arbitrary order.
	OrderedMeta bool
	// SplitMeta: one operation's sub-updates (directory entry vs link
	// count) can persist independently, the classic fsck inconsistency
	// source on non-journaled filesystems.
	SplitMeta bool
	// TornWrites: a crashed data write can land a torn prefix of its
	// bytes (chaos.TornSplit); the CE object store commits a record
	// whole or not at all.
	TornWrites bool
	// FsyncEntries: flushing a file also commits the metadata journal
	// through that file's entry updates (NTFS); ext2-era fsync flushed
	// data only, leaving a created file's entry volatile.
	FsyncEntries bool
}

// PolicyFor returns the durability policy of one OS profile.
func PolicyFor(os osprofile.OS) Policy {
	switch os {
	case osprofile.Linux: // ext2: async metadata, hard links, POSIX rename
		return Policy{RenameReplaces: true, Links: true, AtomicRename: true,
			SplitMeta: true, TornWrites: true}
	case osprofile.WinNT, osprofile.Win2000: // NTFS: journaled metadata
		return Policy{Links: true, AtomicRename: true, OrderedMeta: true,
			TornWrites: true, FsyncEntries: true}
	case osprofile.WinCE: // transactional object store
		return Policy{AtomicRename: true, OrderedMeta: true, FsyncEntries: true}
	default: // Win95/98/98SE: FAT
		return Policy{SplitMeta: true, TornWrites: true}
	}
}
