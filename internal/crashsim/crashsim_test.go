package crashsim

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"ballista/internal/osprofile"
)

func wl(ops ...Op) Workload { return Workload{Seed: 7, Ops: ops} }

func verdictFor(t *testing.T, w Workload, o osprofile.OS) *Verdict {
	t.Helper()
	f := Evaluate(w, nil, []osprofile.OS{o})
	return f.Verdicts[o.WireName()]
}

func TestEnumerateIsExhaustiveAndDeterministic(t *testing.T) {
	// Two names: create/write/fsync/remove over each (8) plus the four
	// ordered two-name ops (rename×2, link×2) = 12 slots; seq-1 + seq-2
	// = 12 + 144.
	ws := Enumerate(nil, 2, 7, 0)
	if len(ws) != 156 {
		t.Fatalf("enumerated %d workloads, want 156", len(ws))
	}
	again := Enumerate(nil, 2, 7, 0)
	if !reflect.DeepEqual(ws, again) {
		t.Error("enumeration is not deterministic")
	}
	seen := make(map[string]bool)
	for _, w := range ws {
		if k := w.Key(); seen[k] {
			t.Fatalf("duplicate workload %s", k)
		} else {
			seen[k] = true
		}
	}
	if got := Enumerate(nil, 2, 7, 20); len(got) != 20 {
		t.Errorf("budget 20 returned %d workloads", len(got))
	}
	// A budget cut keeps the shortest chains first.
	for _, w := range Enumerate(nil, 2, 7, 12) {
		if len(w.Ops) != 1 {
			t.Fatalf("budget 12 should only contain seq-1 chains, got %s", w.Key())
		}
	}
}

func TestFullyPersistedStateAlwaysLegal(t *testing.T) {
	// "The crash changed nothing" must be a member of every legal-state
	// set, under every policy.
	for _, o := range osprofile.All() {
		pol := PolicyFor(o)
		for _, w := range Enumerate(nil, 2, 7, 40) {
			ex := run(w, nil, pol)
			for cp := 1; cp <= len(w.Ops); cp++ {
				states := enumerateStates(ex, cp, pol)
				if len(states) < 1 {
					t.Fatalf("%s at %s cp %d: empty legal-state set", o.WireName(), w.Key(), cp)
				}
			}
		}
	}
}

func TestAtomicRenameAdmitsNoTornStates(t *testing.T) {
	// ext2/NTFS/CE renames are atomic: no reachable state may show the
	// file under both names or neither.
	w := wl(Op{Kind: OpRename, File: "f0", To: "f1"})
	for _, o := range []osprofile.OS{osprofile.Linux, osprofile.WinNT, osprofile.WinCE} {
		v := verdictFor(t, w, o)
		if v.Results[0] != "ok" {
			t.Fatalf("%s: rename result %q", o.WireName(), v.Results[0])
		}
		if len(v.Violations[0]) != 0 {
			t.Errorf("%s: atomic rename produced violations %v", o.WireName(), v.Violations[0])
		}
	}
}

func TestFATRenameTearsIntoDupAndLoss(t *testing.T) {
	// FAT's delete-then-insert rename can crash with both names present
	// or neither, and the lost-chain orphan in between.
	v := verdictFor(t, wl(Op{Kind: OpRename, File: "f0", To: "f1"}), osprofile.Win98)
	want := []string{InvOrphanInode, InvRenameDup, InvRenameLoss}
	if !reflect.DeepEqual(v.Violations[0], want) {
		t.Errorf("FAT rename violations %v, want %v", v.Violations[0], want)
	}
}

func TestFsyncEntriesDivergence(t *testing.T) {
	// create+fsync: ext2-era fsync flushes data only, so the entry can
	// vanish; NTFS's journal and CE's transactional store keep it.
	w := wl(Op{Kind: OpCreate, File: "f1"}, Op{Kind: OpFsync, File: "f1"})
	for o, wantViol := range map[osprofile.OS]bool{
		osprofile.Linux:   true,
		osprofile.Win95:   true,
		osprofile.WinNT:   false,
		osprofile.Win2000: false,
		osprofile.WinCE:   false,
	} {
		v := verdictFor(t, w, o)
		has := false
		for _, viol := range v.Violations[1] {
			if viol == InvFsyncUnreachable {
				has = true
			}
		}
		if has != wantViol {
			t.Errorf("%s: fsync-unreachable=%v, want %v (violations %v)",
				o.WireName(), has, wantViol, v.Violations[1])
		}
	}
}

func TestFsyncForcesWrites(t *testing.T) {
	// write+fsync: the barrier commits the bytes, so no state may show
	// a torn or missing tail — and without the barrier the torn tail is
	// a legal state, not a violation.
	synced := wl(Op{Kind: OpWrite, File: "f0"}, Op{Kind: OpFsync, File: "f0"})
	v := verdictFor(t, synced, osprofile.Linux)
	if len(v.Violations[1]) != 0 {
		t.Errorf("synced write violations %v, want none", v.Violations[1])
	}
	if v.States[1] != 1 {
		t.Errorf("post-fsync crash point admits %d states, want exactly 1", v.States[1])
	}

	bare := wl(Op{Kind: OpWrite, File: "f0"})
	vb := verdictFor(t, bare, osprofile.Linux)
	if vb.States[0] != 3 { // unapplied, torn, full
		t.Errorf("bare write admits %d states, want 3", vb.States[0])
	}
	if len(vb.Violations[0]) != 0 {
		t.Errorf("bare torn write is legal, got violations %v", vb.Violations[0])
	}
	// CE's object store commits records whole: no torn middle state.
	vc := verdictFor(t, bare, osprofile.WinCE)
	if vc.States[0] != 2 {
		t.Errorf("CE bare write admits %d states, want 2 (no torn)", vc.States[0])
	}
}

func TestLinkUnsupportedDiverges(t *testing.T) {
	f := Evaluate(wl(Op{Kind: OpLink, File: "f0", To: "f1"}), nil, osprofile.All())
	if !f.Divergent {
		t.Fatal("link across profiles should diverge")
	}
	if got := f.Verdicts["win98"].Results[0]; got != "unsupported" {
		t.Errorf("FAT link result %q, want unsupported", got)
	}
	if got := f.Verdicts["linux"].Results[0]; got != "ok" {
		t.Errorf("linux link result %q, want ok", got)
	}
	if got := f.Verdicts["winnt"].Results[0]; got != "ok" {
		t.Errorf("NTFS link result %q, want ok", got)
	}
}

func TestMinimizePreservesEssence(t *testing.T) {
	// fsync(f0);rename(f0,f1) on FAT loses the fsync'd file; dropping
	// the fsync changes the violation set, so minimization keeps both.
	w := wl(Op{Kind: OpFsync, File: "f0"}, Op{Kind: OpRename, File: "f0", To: "f1"})
	oses := osprofile.All()
	f := Evaluate(w, nil, oses)
	if !f.Violating {
		t.Fatal("expected violations")
	}
	m := Minimize(f, nil, oses)
	if len(m.Workload.Ops) != 2 {
		t.Errorf("minimized to %s; the 2-op chain is already minimal", m.Workload.Key())
	}

	// A chain whose second op is irrelevant minimizes to one op.
	w2 := wl(Op{Kind: OpRemove, File: "f0"}, Op{Kind: OpFsync, File: "f1"})
	f2 := Evaluate(w2, nil, oses)
	m2 := Minimize(f2, nil, oses)
	if len(m2.Workload.Ops) != 1 || m2.Workload.Ops[0].Kind != OpRemove {
		t.Errorf("minimized %s to %s, want remove(f0)", w2.Key(), m2.Workload.Key())
	}
}

func TestReproducerRoundTripAndVerify(t *testing.T) {
	oses := osprofile.All()
	f := Evaluate(wl(Op{Kind: OpRename, File: "f0", To: "f1"}), nil, oses)
	rep := NewReproducer(f, oses)
	rep.Name = "fat-rename-tear"
	data, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseReproducer(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Verify(); err != nil {
		t.Errorf("round-tripped reproducer fails verify: %v", err)
	}
	// A tampered verdict must fail verification.
	tampered := strings.Replace(string(data), `"rename-dup"`, `"rename-xyz"`, 1)
	bad, err := ParseReproducer([]byte(tampered))
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.Verify(); err == nil {
		t.Error("tampered reproducer still verifies")
	}
}

func TestSweepReportShape(t *testing.T) {
	rep, err := Sweep(context.Background(), Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workloads != 156 || rep.CrashPoints != 300 {
		t.Errorf("sweep covered %d workloads / %d crash points, want 156/300",
			rep.Workloads, rep.CrashPoints)
	}
	if rep.Divergent == 0 || rep.Violating == 0 || len(rep.Findings) == 0 {
		t.Errorf("sweep found divergent=%d violating=%d findings=%d, want all > 0",
			rep.Divergent, rep.Violating, len(rep.Findings))
	}
	for _, f := range rep.Findings {
		if !f.Interesting() {
			t.Errorf("finding %s is neither divergent nor violating", f.Workload.Key())
		}
	}
}
