package crashsim

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func reportJSON(t *testing.T, rep *Report) []byte {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSweepWorkerCountInvariance is the determinism oracle: evaluation
// is pure and the merge is in enumeration order, so the report must be
// byte-identical for any worker count.
func TestSweepWorkerCountInvariance(t *testing.T) {
	ref, err := Sweep(context.Background(), Config{Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		rep, err := Sweep(context.Background(), Config{Seed: 7, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, rep) {
			t.Errorf("report at %d workers diverges from 1 worker", workers)
		}
		if !bytes.Equal(reportJSON(t, ref), reportJSON(t, rep)) {
			t.Errorf("report JSON at %d workers is not byte-identical", workers)
		}
	}
}

// TestSweepResumeFromTruncatedJournal simulates a mid-sweep kill: a
// complete journal is cut down to a prefix plus a torn half-line, and
// the resumed sweep must skip the tear, re-evaluate only the missing
// workloads, and produce a byte-identical report.
func TestSweepResumeFromTruncatedJournal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "crash.ckpt")
	cfg := Config{Seed: 7, Workers: 4, Checkpoint: path}

	ref, err := Sweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != ref.Workloads+1 {
		t.Fatalf("journal has %d lines, want header + %d", len(lines), ref.Workloads)
	}
	keep := lines[:1+ref.Workloads/2]
	torn := lines[1+ref.Workloads/2]
	truncated := strings.Join(keep, "\n") + "\n" + torn[:len(torn)/2]
	if err := os.WriteFile(path, []byte(truncated), 0o644); err != nil {
		t.Fatal(err)
	}

	resumed, err := Sweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportJSON(t, ref), reportJSON(t, resumed)) {
		t.Error("resumed report is not byte-identical to the uninterrupted run")
	}
}

// TestSweepResumeAfterCancel kills a sweep for real — context
// cancellation mid-feed — then resumes from whatever the journal
// caught.
func TestSweepResumeAfterCancel(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "crash.ckpt")
	cfg := Config{Seed: 7, Workers: 2, Checkpoint: path}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before the feed: nothing (or almost nothing) runs
	if _, err := Sweep(ctx, cfg); err == nil {
		t.Fatal("cancelled sweep reported no error")
	}

	resumed, err := Sweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Sweep(context.Background(), Config{Seed: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportJSON(t, ref), reportJSON(t, resumed)) {
		t.Error("resumed report diverges from an uninterrupted checkpoint-less run")
	}
}

// TestSweepChecksJournalIdentity: a journal from a different sweep
// configuration must be rejected, not silently reused.
func TestSweepChecksJournalIdentity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "crash.ckpt")
	if _, err := Sweep(context.Background(), Config{Seed: 7, Budget: 12, Checkpoint: path}); err != nil {
		t.Fatal(err)
	}
	if _, err := Sweep(context.Background(), Config{Seed: 8, Budget: 12, Checkpoint: path}); err == nil {
		t.Fatal("sweep accepted a journal from a different seed")
	} else if !strings.Contains(err.Error(), "different sweep") {
		t.Fatalf("unexpected error: %v", err)
	}
}
