package crashsim

import (
	"encoding/json"
	"fmt"
	"strings"
)

// OpKind is one bounded-workload operation.
type OpKind int

// Workload operations, in enumeration order.
const (
	OpCreate OpKind = iota
	OpWrite
	OpFsync
	OpRename
	OpLink
	OpRemove
	numOpKinds
)

var opKindNames = [...]string{"create", "write", "fsync", "rename", "link", "remove"}

func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return "unknown"
}

// MarshalJSON renders the kind as its name so reproducers read
// naturally.
func (k OpKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON parses a kind name.
func (k *OpKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for i, n := range opKindNames {
		if n == s {
			*k = OpKind(i)
			return nil
		}
	}
	return fmt.Errorf("crashsim: unknown op kind %q", s)
}

// Op is one workload step: an operation on File, targeting To for the
// two-name operations (rename destination, link alias).
type Op struct {
	Kind OpKind `json:"op"`
	File string `json:"file"`
	To   string `json:"to,omitempty"`
}

func (o Op) String() string {
	if o.To != "" {
		return fmt.Sprintf("%s(%s,%s)", o.Kind, o.File, o.To)
	}
	return fmt.Sprintf("%s(%s)", o.Kind, o.File)
}

// Workload is one bounded operation chain.  The fixture is implicit:
// the first name in the name set exists with fixtureSize seeded bytes;
// the rest do not.  Seed parameterizes the bytes written, never the
// shape, so two sweeps with different seeds cover the same chains.
type Workload struct {
	Seed uint64 `json:"seed"`
	Ops  []Op   `json:"ops"`
}

// Key renders the chain compactly ("create(f1);rename(f1,f0)") for
// spans, signatures and logs.
func (w Workload) Key() string {
	parts := make([]string, len(w.Ops))
	for i, op := range w.Ops {
		parts[i] = op.String()
	}
	return strings.Join(parts, ";")
}

// Kinds renders just the operation kinds ("create;rename").
func (w Workload) Kinds() string {
	parts := make([]string, len(w.Ops))
	for i, op := range w.Ops {
		parts[i] = op.Kind.String()
	}
	return strings.Join(parts, ";")
}

// DefaultNames is the bounded name set: f0 exists in the fixture, f1
// does not.  Two names suffice for every two-name operation shape the
// invariants distinguish (B3's "few files" bound).
func DefaultNames() []string { return []string{"f0", "f1"} }

// opSlots enumerates every single operation over the name set, in
// deterministic (kind, file, target) order.
func opSlots(names []string) []Op {
	var out []Op
	for k := OpKind(0); k < numOpKinds; k++ {
		for _, f := range names {
			switch k {
			case OpRename, OpLink:
				for _, to := range names {
					if to != f {
						out = append(out, Op{Kind: k, File: f, To: to})
					}
				}
			default:
				out = append(out, Op{Kind: k, File: f})
			}
		}
	}
	return out
}

// Enumerate generates every workload of length 1..maxOps over the name
// set, in deterministic order: all seq-1 chains first, then seq-2, each
// in lexicographic slot order.  budget > 0 truncates the list.  The
// enumeration is seeded only through the data bytes each workload
// writes; the chain set itself is exhaustive, per B3's argument that
// bounded exhaustion beats sampling for crash-consistency bugs.
func Enumerate(names []string, maxOps int, seed uint64, budget int) []Workload {
	if len(names) == 0 {
		names = DefaultNames()
	}
	if maxOps < 1 {
		maxOps = 1
	}
	slots := opSlots(names)
	var out []Workload
	// Emit strictly by length so a budget cut keeps the cheapest
	// (shortest) chains.
	for l := 1; l <= maxOps; l++ {
		var gen func(prefix []Op)
		gen = func(prefix []Op) {
			if budget > 0 && len(out) >= budget {
				return
			}
			if len(prefix) == l {
				ops := make([]Op, len(prefix))
				copy(ops, prefix)
				out = append(out, Workload{Seed: seed, Ops: ops})
				return
			}
			for _, s := range slots {
				gen(append(prefix, s))
			}
		}
		gen(nil)
	}
	return out
}
