package crashsim

import (
	"context"
	"fmt"
	"sync"

	"ballista/internal/core"
	"ballista/internal/osprofile"
	"ballista/internal/telemetry/span"
)

// Config parameterizes one crash-consistency sweep.
type Config struct {
	// OSes is the differential set (default: all seven profiles).
	OSes []osprofile.OS
	// Seed parameterizes the data bytes workloads write; the chain set
	// itself is exhaustive and seed-independent.
	Seed uint64
	// MaxOps bounds workload chain length (default 2, B3's seq-2).
	MaxOps int
	// Names is the bounded file-name set (default f0, f1; the first
	// exists in the fixture).
	Names []string
	// Budget caps the number of workloads (0 = the full enumeration).
	Budget int
	// Workers sets evaluation parallelism (default 1).  The report is
	// byte-identical for any value: evaluation is pure and the merge is
	// in enumeration order.
	Workers int
	// Checkpoint, when non-empty, journals per-workload results to this
	// JSONL file so a killed sweep resumes without re-evaluating.
	Checkpoint string
	// Observer receives CrashEvents if it implements core.CrashObserver.
	Observer core.Observer
	// Spans, when non-nil, records sweep/workload spans.
	Spans *span.Recorder
}

// Report is one sweep's deterministic summary: totals plus the deduped,
// minimized findings in enumeration order.
type Report struct {
	Seed        uint64     `json:"seed"`
	OSes        []string   `json:"oses"`
	MaxOps      int        `json:"max_ops"`
	Names       []string   `json:"names"`
	Workloads   int        `json:"workloads"`
	CrashPoints int        `json:"crash_points"`
	States      int        `json:"states"`
	Divergent   int        `json:"divergent"`
	Violating   int        `json:"violating"`
	Findings    []*Finding `json:"findings"`
}

// wlResult is one workload's evaluation, as journaled and merged.
type wlResult struct {
	CrashPoints int      `json:"cp"`
	States      int      `json:"st"`
	Violations  int      `json:"vi"`
	Finding     *Finding `json:"f,omitempty"` // only when interesting
}

func evalOne(w Workload, names []string, oses []osprofile.OS) *wlResult {
	f := Evaluate(w, names, oses)
	r := &wlResult{CrashPoints: len(w.Ops)}
	for _, v := range f.Verdicts {
		for cp, n := range v.States {
			r.States += n
			if len(v.Violations[cp]) > 0 {
				r.Violations++
			}
		}
	}
	if f.Interesting() {
		r.Finding = f
	}
	return r
}

// Sweep enumerates the bounded workload set and evaluates every chain
// across the OS set: per-profile crash-state enumeration, invariant
// checks, differential comparison.  Findings are deduplicated by
// signature and minimized.  The report is identical for any worker
// count and across a kill+resume through the checkpoint journal.
func Sweep(ctx context.Context, cfg Config) (*Report, error) {
	oses := cfg.OSes
	if len(oses) == 0 {
		oses = osprofile.All()
	}
	names := cfg.Names
	if len(names) == 0 {
		names = DefaultNames()
	}
	maxOps := cfg.MaxOps
	if maxOps <= 0 {
		maxOps = 2
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	workloads := Enumerate(names, maxOps, cfg.Seed, cfg.Budget)

	var journal *ckptJournal
	done := make(map[int]*wlResult)
	if cfg.Checkpoint != "" {
		var err error
		journal, done, err = openJournal(cfg.Checkpoint, cfg, names, oses, len(workloads))
		if err != nil {
			return nil, err
		}
		defer journal.Close()
	}

	parent := cfg.Spans.Start("crashsweep",
		fmt.Sprintf("seed=%d max_ops=%d oses=%d workloads=%d", cfg.Seed, maxOps, len(oses), len(workloads)))
	defer parent.End()

	results := make([]*wlResult, len(workloads))
	var todo []int
	for i := range workloads {
		if r, ok := done[i]; ok {
			results[i] = r
		} else {
			todo = append(todo, i)
		}
	}

	jobs := make(chan int)
	var mu sync.Mutex // guards results writes and journal appends
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				ws := cfg.Spans.StartSampled("crashwl", workloads[i].Key()).SetParent(parent.ID())
				r := evalOne(workloads[i], names, oses)
				ws.End()
				mu.Lock()
				results[i] = r
				if journal != nil {
					journal.append(i, r)
				}
				mu.Unlock()
			}
		}()
	}
	var cancelled error
feed:
	for _, i := range todo {
		select {
		case jobs <- i:
		case <-ctx.Done():
			cancelled = ctx.Err()
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if cancelled != nil {
		return nil, cancelled
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Merge in enumeration order: totals, observer events, and findings
	// deduplicated by signature then minimized (and re-deduplicated —
	// minimization can collapse distinct chains onto one witness).
	rep := &Report{Seed: cfg.Seed, MaxOps: maxOps, Names: names, Workloads: len(workloads)}
	for _, o := range oses {
		rep.OSes = append(rep.OSes, o.WireName())
	}
	obs, _ := cfg.Observer.(core.CrashObserver)
	seen := make(map[string]bool)
	var raw []*Finding
	for i, r := range results {
		rep.CrashPoints += r.CrashPoints
		rep.States += r.States
		f := r.Finding
		if f != nil {
			if f.Divergent {
				rep.Divergent++
			}
			if f.Violating {
				rep.Violating++
			}
			if !seen[f.Signature] {
				seen[f.Signature] = true
				raw = append(raw, f)
			}
		}
		if obs != nil {
			ev := core.CrashEvent{
				Seq: i, Workload: workloads[i].Key(), OSes: rep.OSes,
				CrashPoints: r.CrashPoints, States: r.States, Violations: r.Violations,
			}
			if f != nil {
				ev.Divergent, ev.Violating = f.Divergent, f.Violating
			}
			obs.OnCrashDone(ev)
		}
	}
	minSeen := make(map[string]bool)
	for _, f := range raw {
		m := Minimize(f, names, oses)
		if !minSeen[m.Signature] {
			minSeen[m.Signature] = true
			rep.Findings = append(rep.Findings, m)
		}
	}
	cfg.Spans.Instant("crashsweep", "done",
		fmt.Sprintf("findings=%d divergent=%d violating=%d states=%d",
			len(rep.Findings), rep.Divergent, rep.Violating, rep.States))
	return rep, nil
}
