package crashsim

import (
	"bytes"
	"sort"

	"ballista/internal/sim/fs"
)

// Invariant names, the vocabulary of violation reports.
const (
	// InvFsyncUnreachable: a file was fsync'd but no directory entry
	// reaches it post-crash — the ext2-era "fsync the file, lose the
	// create" hazard.
	InvFsyncUnreachable = "fsync-unreachable"
	// InvFsyncData: an fsync'd file's bytes do not match the content
	// that was durable-committed by the barrier.
	InvFsyncData = "fsync-data"
	// InvRenameDup: a completed rename left the file under both names.
	InvRenameDup = "rename-dup"
	// InvRenameLoss: a rename of a durably-existing file left it under
	// neither name.
	InvRenameLoss = "rename-loss"
	// InvOrphanEntry: a directory entry references a missing or freed
	// file object.
	InvOrphanEntry = "orphan-entry"
	// InvOrphanInode: a file object holds a positive link count but no
	// directory entry reaches it (lost storage, fsck's lost+found).
	InvOrphanInode = "orphan-inode"
	// InvLinkCount: a file object's stored link count disagrees with
	// its actual entry count.
	InvLinkCount = "link-count"
)

// checkState runs every persistence invariant against one post-crash
// state and returns the sorted, deduplicated violation names.
func checkState(st *DiskState, base *DiskState, pending []fs.PersistRecord, pol Policy) []string {
	found := make(map[string]bool)

	for i, r := range pending {
		switch r.Kind {
		case fs.PersistFsync:
			// Durability promised at the barrier: the file must still be
			// reachable (unless the workload itself removed it later) and
			// must hold the bytes the barrier committed (unless a later
			// write legitimately overwrote them).
			removedLater := false
			dataLater := false
			for _, p := range pending[i+1:] {
				if p.Kind == fs.PersistRemove && p.Node == r.Node {
					removedLater = true
				}
				if isData(p.Kind) && p.Node == r.Node {
					dataLater = true
				}
			}
			if !removedLater && st.entryCount(r.Node) == 0 {
				found[InvFsyncUnreachable] = true
			}
			if !dataLater {
				want := syncedData(base, pending[:i], r.Node)
				f := st.Files[r.Node]
				// A missing file object with nothing synced is the
				// unreachable case, not a data-loss case.
				if f == nil && len(want) > 0 || f != nil && !bytes.Equal(f.Data, want) {
					found[InvFsyncData] = true
				}
			}
		case fs.PersistRename:
			// Both names present is only a torn rename if nothing later
			// legitimately re-established the old name for this node.
			reMade := false
			for _, p := range pending[i+1:] {
				if p.Node != r.Node {
					continue
				}
				if (p.Kind == fs.PersistCreate && p.Path == r.Path) ||
					(p.Kind == fs.PersistLink || p.Kind == fs.PersistRename) && p.Path2 == r.Path {
					reMade = true
				}
			}
			if id, ok := st.Entries[r.Path]; !reMade && ok && id == r.Node {
				if id2, ok2 := st.Entries[r.Path2]; ok2 && id2 == r.Node {
					found[InvRenameDup] = true
				}
			}
			removed := false
			for _, p := range pending {
				if p.Kind == fs.PersistRemove && p.Node == r.Node {
					removed = true
				}
			}
			if !removed && base.entryCount(r.Node) > 0 && st.entryCount(r.Node) == 0 {
				found[InvRenameLoss] = true
			}
		}
	}

	for _, id := range sortedEntryTargets(st) {
		f := st.Files[id]
		if f == nil || (pol.Links && f.Nlink <= 0) {
			found[InvOrphanEntry] = true
		}
	}
	for id, f := range st.Files {
		cnt := st.entryCount(id)
		if f.Nlink > 0 && cnt == 0 {
			found[InvOrphanInode] = true
		}
		if pol.Links && cnt > 0 && cnt != f.Nlink {
			found[InvLinkCount] = true
		}
	}

	out := make([]string, 0, len(found))
	for v := range found {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// syncedData computes the content the barrier committed: the base image
// plus every earlier data record on the node, applied whole.
func syncedData(base *DiskState, before []fs.PersistRecord, node int) []byte {
	var data []byte
	if f := base.Files[node]; f != nil {
		data = append(data, f.Data...)
	}
	tmp := &DiskState{Entries: map[string]int{}, Files: map[int]*fileState{node: {Data: data}}}
	for _, r := range before {
		if isData(r.Kind) && r.Node == node {
			tmp.apply(r, modeFull, false)
		}
	}
	return tmp.Files[node].Data
}

func sortedEntryTargets(st *DiskState) []int {
	out := make([]int, 0, len(st.Entries))
	for _, id := range st.Entries {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
