package crashsim

import (
	"testing"

	"ballista/internal/osprofile"
)

// BenchmarkCrashEnum measures the full oracle pipeline — execute,
// enumerate legal states, check invariants — over a fixed slice of the
// bounded workload set on all seven profiles.  The cases/sec metric
// (workload evaluations per second) is gated by cmd/benchgate against
// the committed BENCH_crash.json baseline.
func BenchmarkCrashEnum(b *testing.B) {
	oses := osprofile.All()
	workloads := Enumerate(nil, 2, 7, 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range workloads {
			Evaluate(w, nil, oses)
		}
	}
	b.ReportMetric(float64(b.N*len(workloads))/b.Elapsed().Seconds(), "cases/sec")
}
