package crashsim

import (
	"fmt"
	"reflect"
	"sort"
	"strings"

	"ballista/internal/osprofile"
)

// Verdict is one OS profile's view of a workload: the per-op outcome
// tokens, and per crash point the count of legal post-crash states and
// the union of invariant violations found across them.
type Verdict struct {
	Results    []string   `json:"results"`
	States     []int      `json:"states"`
	Violations [][]string `json:"violations"`
}

// violationUnion flattens a verdict's violations into one sorted set.
func (v *Verdict) violationUnion() []string {
	set := make(map[string]bool)
	for _, vs := range v.Violations {
		for _, name := range vs {
			set[name] = true
		}
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// violating reports whether any crash point violated any invariant.
func (v *Verdict) violating() bool {
	for _, vs := range v.Violations {
		if len(vs) > 0 {
			return true
		}
	}
	return false
}

// Finding is one evaluated workload: its per-OS verdicts and the
// differential analysis over them.
type Finding struct {
	Workload  Workload            `json:"workload"`
	Verdicts  map[string]*Verdict `json:"verdicts"`
	Divergent bool                `json:"divergent,omitempty"`
	Violating bool                `json:"violating,omitempty"`
	Signature string              `json:"signature"`
}

// Interesting reports whether the finding earns a place in a report:
// either the OS set diverged, or an invariant was violated somewhere.
func (f *Finding) Interesting() bool { return f.Divergent || f.Violating }

// Evaluate replays one workload across the OS set and runs the full
// crash-state enumeration and invariant check on each profile.  It is a
// pure function of (w, names, oses): sweeps stay deterministic for any
// worker count because evaluation order cannot matter.
func Evaluate(w Workload, names []string, oses []osprofile.OS) *Finding {
	if len(names) == 0 {
		names = DefaultNames()
	}
	if len(oses) == 0 {
		oses = osprofile.All()
	}
	f := &Finding{Workload: w, Verdicts: make(map[string]*Verdict, len(oses))}
	for _, o := range oses {
		pol := PolicyFor(o)
		ex := run(w, names, pol)
		v := &Verdict{Results: ex.results}
		base := baseState(ex)
		for cp := 1; cp <= len(w.Ops); cp++ {
			states := enumerateStates(ex, cp, pol)
			pending := ex.log.Records()[ex.baseLen:ex.marks[cp-1]]
			union := make(map[string]bool)
			for _, st := range states {
				for _, viol := range checkState(st, base, pending, pol) {
					union[viol] = true
				}
			}
			vs := make([]string, 0, len(union))
			for name := range union {
				vs = append(vs, name)
			}
			sort.Strings(vs)
			v.States = append(v.States, len(states))
			v.Violations = append(v.Violations, vs)
		}
		f.Verdicts[o.WireName()] = v
		if v.violating() {
			f.Violating = true
		}
	}
	first := f.Verdicts[oses[0].WireName()]
	for _, o := range oses[1:] {
		v := f.Verdicts[o.WireName()]
		if !reflect.DeepEqual(v.Results, first.Results) ||
			!reflect.DeepEqual(v.Violations, first.Violations) {
			f.Divergent = true
			break
		}
	}
	f.Signature = signature(w, f.Verdicts, oses)
	return f
}

// signature abstracts a finding to its bug class — the op-kind chain,
// the cross-OS equivalence pattern of op results, and each profile's
// violation set — so near-identical findings (same chain shape over
// different names) deduplicate.
func signature(w Workload, verdicts map[string]*Verdict, oses []osprofile.OS) string {
	var b strings.Builder
	b.WriteString(w.Kinds())
	b.WriteString("|")
	classes := make(map[string]byte)
	for _, o := range oses {
		key := strings.Join(verdicts[o.WireName()].Results, ",")
		c, ok := classes[key]
		if !ok {
			c = byte('a' + len(classes))
			classes[key] = c
		}
		b.WriteByte(c)
	}
	b.WriteString("|")
	for i, o := range oses {
		if i > 0 {
			b.WriteString("/")
		}
		b.WriteString(strings.Join(verdicts[o.WireName()].violationUnion(), ","))
	}
	return b.String()
}

// essence is the part of a finding minimization must preserve: the
// divergence bit plus each profile's violation set.
func essence(f *Finding, oses []osprofile.OS) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v|", f.Divergent)
	for i, o := range oses {
		if i > 0 {
			b.WriteString("/")
		}
		b.WriteString(strings.Join(f.Verdicts[o.WireName()].violationUnion(), ","))
	}
	return b.String()
}

// Minimize greedily drops workload ops while the finding's essence
// (divergence and per-OS violation sets) is preserved, re-evaluating
// after each candidate drop.  Deterministic: ops are tried in order,
// first successful drop wins each round.
func Minimize(f *Finding, names []string, oses []osprofile.OS) *Finding {
	if len(oses) == 0 {
		oses = osprofile.All()
	}
	want := essence(f, oses)
	cur := f
	for len(cur.Workload.Ops) > 1 {
		dropped := false
		for i := range cur.Workload.Ops {
			ops := make([]Op, 0, len(cur.Workload.Ops)-1)
			ops = append(ops, cur.Workload.Ops[:i]...)
			ops = append(ops, cur.Workload.Ops[i+1:]...)
			cand := Evaluate(Workload{Seed: cur.Workload.Seed, Ops: ops}, names, oses)
			if cand.Interesting() && essence(cand, oses) == want {
				cur = cand
				dropped = true
				break
			}
		}
		if !dropped {
			break
		}
	}
	return cur
}
