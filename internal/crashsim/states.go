package crashsim

import (
	"fmt"
	"sort"
	"strings"

	"ballista/internal/chaos"
	"ballista/internal/sim/fs"
)

// fileState is one file object (inode analogue) as persisted: its data
// bytes and its stored link count.
type fileState struct {
	Data  []byte
	Nlink int
}

// DiskState is one legal post-crash disk image: directory entries
// (path → file object id) plus file objects.  Ids are the persistence
// log's node ids.
type DiskState struct {
	Entries map[string]int
	Files   map[int]*fileState
}

func newDiskState() *DiskState {
	return &DiskState{Entries: make(map[string]int), Files: make(map[int]*fileState)}
}

func (st *DiskState) clone() *DiskState {
	c := newDiskState()
	for p, id := range st.Entries {
		c.Entries[p] = id
	}
	for id, f := range st.Files {
		nf := &fileState{Nlink: f.Nlink, Data: make([]byte, len(f.Data))}
		copy(nf.Data, f.Data)
		c.Files[id] = nf
	}
	return c
}

func (st *DiskState) ensure(id int) *fileState {
	f, ok := st.Files[id]
	if !ok {
		f = &fileState{}
		st.Files[id] = f
	}
	return f
}

// entryCount counts directory entries referencing a file object.
func (st *DiskState) entryCount(id int) int {
	n := 0
	for _, e := range st.Entries {
		if e == id {
			n++
		}
	}
	return n
}

// Key renders a canonical fingerprint of the state for deduplication.
func (st *DiskState) Key() string {
	paths := make([]string, 0, len(st.Entries))
	for p := range st.Entries {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	ids := make([]int, 0, len(st.Files))
	for id := range st.Files {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var b strings.Builder
	for _, p := range paths {
		fmt.Fprintf(&b, "%s=%d;", p, st.Entries[p])
	}
	b.WriteString("|")
	for _, id := range ids {
		f := st.Files[id]
		fmt.Fprintf(&b, "%d:%d:%x;", id, f.Nlink, f.Data)
	}
	return b.String()
}

// Application modes for one metadata record in a partial state.
type metaMode int

const (
	modeAbsent metaMode = iota
	modeFull
	modeAddOnly    // rename: new entry added, old kept; link/remove: entry half only
	modeRemoveOnly // rename: old entry dropped, new never added
	modeNlinkOnly  // link/remove: link-count half only
)

// isData reports whether the record is node-scoped data (vs an entry
// update or a barrier).
func isData(k fs.PersistKind) bool {
	return k == fs.PersistWrite || k == fs.PersistTruncate
}

func isMeta(k fs.PersistKind) bool {
	switch k {
	case fs.PersistCreate, fs.PersistMkdir, fs.PersistRename, fs.PersistLink, fs.PersistRemove:
		return true
	}
	return false
}

// apply lands one record on the state under a mode (meta records) or
// torn flag (write records).  Entry removals only fire when the entry
// still references the record's node: an unapplied earlier op may have
// left a different object under that name, and physically the dir block
// holding our update would not touch it.
func (st *DiskState) apply(r fs.PersistRecord, mode metaMode, torn bool) {
	switch r.Kind {
	case fs.PersistWrite:
		data := r.Data
		if torn {
			data = data[:chaos.TornSplit(len(data))]
		}
		f := st.ensure(r.Node)
		end := r.Off + int64(len(data))
		if end > int64(len(f.Data)) {
			grown := make([]byte, end)
			copy(grown, f.Data)
			f.Data = grown
		}
		copy(f.Data[r.Off:], data)
	case fs.PersistTruncate:
		f := st.ensure(r.Node)
		if r.Size <= int64(len(f.Data)) {
			f.Data = f.Data[:r.Size]
		} else {
			grown := make([]byte, r.Size)
			copy(grown, f.Data)
			f.Data = grown
		}
	case fs.PersistCreate, fs.PersistMkdir:
		if mode == modeAbsent {
			return
		}
		st.Entries[r.Path] = r.Node
		f := st.ensure(r.Node)
		f.Nlink = 1
	case fs.PersistRemove:
		if mode == modeAbsent {
			return
		}
		if mode == modeFull || mode == modeAddOnly {
			if id, ok := st.Entries[r.Path]; ok && id == r.Node {
				delete(st.Entries, r.Path)
			}
		}
		if mode == modeFull || mode == modeNlinkOnly {
			st.ensure(r.Node).Nlink--
		}
	case fs.PersistLink:
		if mode == modeAbsent {
			return
		}
		if mode == modeFull || mode == modeAddOnly {
			st.Entries[r.Path2] = r.Node
		}
		if mode == modeFull || mode == modeNlinkOnly {
			st.ensure(r.Node).Nlink++
		}
	case fs.PersistRename:
		if mode == modeAbsent {
			return
		}
		if mode == modeFull || mode == modeRemoveOnly {
			if id, ok := st.Entries[r.Path]; ok && id == r.Node {
				delete(st.Entries, r.Path)
			}
		}
		if mode == modeFull || mode == modeAddOnly {
			st.Entries[r.Path2] = r.Node
			if mode == modeFull && r.Prev >= 0 {
				// Replacing renames are atomic in every profile that
				// allows them, so the target's unlink rides along.
				st.ensure(r.Prev).Nlink--
			}
		}
	case fs.PersistFsync:
	}
}

// baseState replays the fixture's records — always durable — into the
// pre-workload disk image.
func baseState(ex *execution) *DiskState {
	st := newDiskState()
	for _, r := range ex.log.Records()[:ex.baseLen] {
		st.apply(r, modeFull, false)
	}
	return st
}

// dataCut is one per-node data choice: the first Full records applied
// whole, plus — when Torn — the next record's torn prefix.
type dataCut struct {
	Full int
	Torn bool
}

// enumerateStates returns every legal post-crash disk state at crash
// point cp (1-based: the crash lands after op cp-1), deduplicated, in
// deterministic first-generation order.  The fully-persisted state is
// always a member: "no reordering happened" is legal under every
// policy.
func enumerateStates(ex *execution, cp int, pol Policy) []*DiskState {
	recs := ex.log.Records()
	pending := recs[ex.baseLen:ex.marks[cp-1]]
	base := baseState(ex)

	// Forced records: an fsync barrier commits every earlier data record
	// on its node; under FsyncEntries it also commits the node's entry
	// updates, and an ordered journal drags every earlier metadata
	// record along with them.
	forced := make([]bool, len(pending))
	for i, r := range pending {
		if r.Kind != fs.PersistFsync {
			continue
		}
		maxMeta := -1
		for j := 0; j < i; j++ {
			p := pending[j]
			if isData(p.Kind) && p.Node == r.Node {
				forced[j] = true
			}
			if pol.FsyncEntries && isMeta(p.Kind) && (p.Node == r.Node || p.Prev == r.Node) {
				forced[j] = true
				maxMeta = j
			}
		}
		if pol.OrderedMeta && maxMeta >= 0 {
			for j := 0; j < maxMeta; j++ {
				if isMeta(pending[j].Kind) {
					forced[j] = true
				}
			}
		}
	}

	// Per-node data choices: a prefix of that node's data records, with
	// an optional torn tail on the first unapplied write.
	dataIdx := make(map[int][]int) // node id → indices into pending
	var dataNodes []int
	for i, r := range pending {
		if !isData(r.Kind) {
			continue
		}
		if _, ok := dataIdx[r.Node]; !ok {
			dataNodes = append(dataNodes, r.Node)
		}
		dataIdx[r.Node] = append(dataIdx[r.Node], i)
	}
	dataChoices := make([][]dataCut, len(dataNodes))
	for ni, node := range dataNodes {
		idx := dataIdx[node]
		floor := 0
		for k, i := range idx {
			if forced[i] {
				floor = k + 1
			}
		}
		var cuts []dataCut
		for k := floor; k <= len(idx); k++ {
			cuts = append(cuts, dataCut{Full: k})
			if k < len(idx) && pol.TornWrites {
				if r := pending[idx[k]]; r.Kind == fs.PersistWrite && len(r.Data) > 1 {
					cuts = append(cuts, dataCut{Full: k, Torn: true})
				}
			}
		}
		dataChoices[ni] = cuts
	}

	// Metadata choices: a single journal cut under OrderedMeta,
	// otherwise an independent mode per record, split where the policy
	// lets one op's halves persist separately.
	var metaIdx []int
	for i, r := range pending {
		if isMeta(r.Kind) {
			metaIdx = append(metaIdx, i)
		}
	}
	var metaCombos [][]metaMode
	if pol.OrderedMeta {
		floor := 0
		for k, i := range metaIdx {
			if forced[i] {
				floor = k + 1
			}
		}
		for cut := floor; cut <= len(metaIdx); cut++ {
			modes := make([]metaMode, len(metaIdx))
			for k := range modes {
				if k < cut {
					modes[k] = modeFull
				} else {
					modes[k] = modeAbsent
				}
			}
			metaCombos = append(metaCombos, modes)
		}
	} else {
		options := make([][]metaMode, len(metaIdx))
		for k, i := range metaIdx {
			r := pending[i]
			switch {
			case forced[i]:
				options[k] = []metaMode{modeFull}
			case r.Kind == fs.PersistRename && !pol.AtomicRename && pol.SplitMeta:
				options[k] = []metaMode{modeAbsent, modeAddOnly, modeRemoveOnly, modeFull}
			case r.Kind == fs.PersistLink && pol.SplitMeta && pol.Links:
				options[k] = []metaMode{modeAbsent, modeAddOnly, modeNlinkOnly, modeFull}
			case r.Kind == fs.PersistRemove && pol.SplitMeta && pol.Links:
				options[k] = []metaMode{modeAbsent, modeAddOnly, modeNlinkOnly, modeFull}
			default:
				options[k] = []metaMode{modeAbsent, modeFull}
			}
		}
		metaCombos = cartesian(options)
	}
	if len(metaCombos) == 0 {
		metaCombos = [][]metaMode{nil}
	}

	dataCombos := cartesianCuts(dataChoices)
	if len(dataCombos) == 0 {
		dataCombos = [][]dataCut{nil}
	}

	seen := make(map[string]bool)
	var out []*DiskState
	for _, mc := range metaCombos {
		for _, dc := range dataCombos {
			st := base.clone()
			// Resolve each record's application from the combination,
			// then land them in log order.
			metaAt := make(map[int]metaMode)
			for k, i := range metaIdx {
				metaAt[i] = mc[k]
			}
			fullAt := make(map[int]bool)
			tornAt := make(map[int]bool)
			for ni := range dataNodes {
				cut := dc[ni]
				idx := dataIdx[dataNodes[ni]]
				for k := 0; k < cut.Full; k++ {
					fullAt[idx[k]] = true
				}
				if cut.Torn {
					tornAt[idx[cut.Full]] = true
				}
			}
			for i, r := range pending {
				switch {
				case isData(r.Kind):
					if fullAt[i] {
						st.apply(r, modeFull, false)
					} else if tornAt[i] {
						st.apply(r, modeFull, true)
					}
				case isMeta(r.Kind):
					st.apply(r, metaAt[i], false)
				}
			}
			if k := st.Key(); !seen[k] {
				seen[k] = true
				out = append(out, st)
			}
		}
	}
	return out
}

func cartesian(options [][]metaMode) [][]metaMode {
	combos := [][]metaMode{nil}
	for _, opts := range options {
		var next [][]metaMode
		for _, c := range combos {
			for _, o := range opts {
				nc := make([]metaMode, len(c)+1)
				copy(nc, c)
				nc[len(c)] = o
				next = append(next, nc)
			}
		}
		combos = next
	}
	return combos
}

func cartesianCuts(options [][]dataCut) [][]dataCut {
	combos := [][]dataCut{nil}
	for _, opts := range options {
		var next [][]dataCut
		for _, c := range combos {
			for _, o := range opts {
				nc := make([]dataCut, len(c)+1)
				copy(nc, c)
				nc[len(c)] = o
				next = append(next, nc)
			}
		}
		combos = next
	}
	return combos
}
