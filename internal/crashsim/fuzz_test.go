package crashsim

import (
	"reflect"
	"testing"

	"ballista/internal/osprofile"
)

// decodeWorkload turns raw fuzz bytes into a bounded workload: the
// first 8 bytes seed the data, then each op is 2 bytes (kind, names).
// Length is capped at 4 ops — beyond B3's seq-2 but still bounded.
func decodeWorkload(data []byte) (Workload, bool) {
	if len(data) < 8+2 {
		return Workload{}, false
	}
	var seed uint64
	for _, b := range data[:8] {
		seed = seed<<8 | uint64(b)
	}
	names := DefaultNames()
	w := Workload{Seed: seed}
	for rest := data[8:]; len(rest) >= 2 && len(w.Ops) < 4; rest = rest[2:] {
		kind := OpKind(rest[0] % byte(numOpKinds))
		file := names[rest[1]&1]
		op := Op{Kind: kind, File: file}
		if kind == OpRename || kind == OpLink {
			op.To = names[(rest[1]>>1)&1]
			if op.To == op.File {
				op.To = names[1-(rest[1]>>1)&1]
			}
		}
		w.Ops = append(w.Ops, op)
	}
	return w, true
}

// FuzzCrashWorkload drives random bounded workloads through the full
// oracle on every profile and asserts its structural properties: no
// panic, a non-empty legal-state set at every crash point (the fully
// persisted state is always legal), verdict vectors sized to the
// workload, and a stable (pure) evaluation.
func FuzzCrashWorkload(f *testing.F) {
	f.Add([]byte("\x00\x00\x00\x00\x00\x00\x00\x07\x03\x01"))             // rename(f1,f0)
	f.Add([]byte("\x00\x00\x00\x00\x00\x00\x00\x07\x00\x01\x02\x01"))     // create(f1);fsync(f1)
	f.Add([]byte("\x00\x00\x00\x00\x00\x00\x00\x2a\x01\x00\x03\x00"))     // write(f0);rename(f0,f1)
	f.Add([]byte("\x00\x00\x00\x00\x00\x00\x00\x01\x04\x00\x05\x01\x02\x00")) // link;remove;fsync
	f.Fuzz(func(t *testing.T, data []byte) {
		w, ok := decodeWorkload(data)
		if !ok {
			t.Skip()
		}
		oses := osprofile.All()
		fd := Evaluate(w, nil, oses)
		for _, o := range oses {
			v := fd.Verdicts[o.WireName()]
			if v == nil {
				t.Fatalf("no verdict for %s", o.WireName())
			}
			n := len(w.Ops)
			if len(v.Results) != n || len(v.States) != n || len(v.Violations) != n {
				t.Fatalf("%s: verdict vectors %d/%d/%d, want %d each",
					o.WireName(), len(v.Results), len(v.States), len(v.Violations), n)
			}
			for cp, states := range v.States {
				if states < 1 {
					t.Fatalf("%s %s cp %d: empty legal-state set", o.WireName(), w.Key(), cp+1)
				}
			}
		}
		again := Evaluate(w, nil, oses)
		if !reflect.DeepEqual(fd, again) {
			t.Fatalf("evaluation of %s is not pure", w.Key())
		}
		if fd.Interesting() {
			m := Minimize(fd, nil, oses)
			if !m.Interesting() {
				t.Fatalf("minimizing %s lost the finding", w.Key())
			}
		}
	})
}
