package crashsim

import (
	"errors"

	"ballista/internal/sim/fs"
)

// fixtureSize is the seeded byte count of the pre-existing fixture
// file, and writeSize the bytes each workload write lands — a partial
// overwrite, so fsync'd-prefix checks see both old and new bytes.
const (
	fixtureSize = 16
	writeSize   = 8
)

// seededBytes derives deterministic content from (seed, salt); the same
// bytes land on every OS so disk states are comparable.
func seededBytes(seed, salt uint64, n int) []byte {
	out := make([]byte, n)
	x := seed*0x9e3779b97f4a7c15 + salt + 1
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = byte(x)
	}
	return out
}

// execution is one workload replayed on one OS profile's simulated FS:
// the persistence log it produced, the per-op outcome tokens, and the
// log watermark after each op (the crash points).
type execution struct {
	log     *fs.PersistLog
	baseLen int      // records belonging to the fixture, always durable
	results []string // per-op outcome token ("ok" or an error token)
	marks   []int    // log length after each op
}

// errToken maps an fs error to a stable wire token, so per-OS results
// diff cleanly.
func errToken(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, fs.ErrNotFound):
		return "noent"
	case errors.Is(err, fs.ErrExists):
		return "exists"
	case errors.Is(err, fs.ErrIsDir):
		return "isdir"
	case errors.Is(err, fs.ErrNotDir):
		return "notdir"
	case errors.Is(err, fs.ErrPerm):
		return "perm"
	case errors.Is(err, fs.ErrNoSpace):
		return "nospace"
	case errors.Is(err, fs.ErrIO):
		return "io"
	default:
		return "err"
	}
}

// run replays the workload on a fresh simulated FS under one durability
// policy.  The fixture (first name exists with seeded bytes) executes
// with the log attached so its records — always treated as durable —
// assign the node ids the workload then shares.
func run(w Workload, names []string, pol Policy) *execution {
	if len(names) == 0 {
		names = DefaultNames()
	}
	fsys := fs.New(nil)
	log := fs.NewPersistLog()
	fsys.SetPersistLog(log)

	// Fixture: names[0] exists with fixtureSize seeded bytes.
	n, err := fsys.Create("/"+names[0], 0o6, true)
	if err != nil {
		panic("crashsim: fixture create failed: " + err.Error())
	}
	of := fsys.OpenNode(n, false, true)
	if _, err := of.Write(seededBytes(w.Seed, 0, fixtureSize)); err != nil {
		panic("crashsim: fixture write failed: " + err.Error())
	}
	_ = of.Close()

	ex := &execution{log: log, baseLen: log.Len()}
	for i, op := range w.Ops {
		ex.results = append(ex.results, execOp(fsys, pol, op, w.Seed, uint64(i)))
		ex.marks = append(ex.marks, log.Len())
	}
	return ex
}

func execOp(fsys *fs.FileSystem, pol Policy, op Op, seed, salt uint64) string {
	path := "/" + op.File
	switch op.Kind {
	case OpCreate:
		_, err := fsys.Create(path, 0o6, true)
		return errToken(err)
	case OpWrite:
		of, err := fsys.Open(path, false, true)
		if err != nil {
			return errToken(err)
		}
		defer of.Close()
		_, err = of.Write(seededBytes(seed, salt+1, writeSize))
		return errToken(err)
	case OpFsync:
		return errToken(fsys.Fsync(path))
	case OpRename:
		if !pol.RenameReplaces {
			// MoveFile semantics: a missing source reports first, then
			// an existing destination fails the move.
			if _, err := fsys.Stat(path); err != nil {
				return errToken(err)
			}
			if _, err := fsys.Stat("/" + op.To); err == nil {
				return "exists"
			}
		}
		return errToken(fsys.Rename(path, "/"+op.To))
	case OpLink:
		if !pol.Links {
			return "unsupported"
		}
		return errToken(fsys.Link(path, "/"+op.To))
	case OpRemove:
		return errToken(fsys.Remove(path))
	default:
		return "err"
	}
}
