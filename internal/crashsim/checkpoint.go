package crashsim

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"strings"

	"ballista/internal/osprofile"
)

// The checkpoint journal is append-only JSONL: an identity header, then
// one line per completed workload.  Torn tails from a mid-write kill
// are tolerated — an unparseable line is skipped, and the workload just
// re-evaluates on resume (evaluation is pure, so the report cannot
// drift).

type ckptHeader struct {
	V    int    `json:"v"`
	Kind string `json:"kind"`
	ID   string `json:"id"`
}

// ckptLine holds the result in a named field: json cannot unmarshal
// into an embedded pointer to an unexported type, which would silently
// turn every resume into a full re-evaluation.
type ckptLine struct {
	I int       `json:"i"`
	R *wlResult `json:"r"`
}

// sweepID fingerprints the sweep identity so a journal from a different
// configuration cannot silently poison a resume.
func sweepID(cfg Config, names []string, oses []osprofile.OS, workloads int) string {
	h := fnv.New64a()
	var wire []string
	for _, o := range oses {
		wire = append(wire, o.WireName())
	}
	fmt.Fprintf(h, "%d|%d|%d|%s|%s|%d",
		cfg.Seed, cfg.MaxOps, cfg.Budget, strings.Join(names, ","), strings.Join(wire, ","), workloads)
	return fmt.Sprintf("%016x", h.Sum64())
}

type ckptJournal struct {
	f *os.File
}

// openJournal opens (or creates) the checkpoint at path and returns the
// journal plus the workload results already completed.  A header that
// identifies a different sweep is an error, not a silent restart.
func openJournal(path string, cfg Config, names []string, oses []osprofile.OS, workloads int) (*ckptJournal, map[int]*wlResult, error) {
	id := sweepID(cfg, names, oses, workloads)
	done := make(map[int]*wlResult)

	data, err := os.ReadFile(path)
	switch {
	case err == nil && len(data) > 0:
		lines := strings.Split(string(data), "\n")
		var hdr ckptHeader
		if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
			return nil, nil, fmt.Errorf("crashsim: checkpoint %s: unreadable header: %w", path, err)
		}
		if hdr.Kind != "crashsweep" || hdr.V != 1 {
			return nil, nil, fmt.Errorf("crashsim: checkpoint %s is not a crashsweep journal", path)
		}
		if hdr.ID != id {
			return nil, nil, fmt.Errorf("crashsim: checkpoint %s belongs to a different sweep (id %s, want %s)", path, hdr.ID, id)
		}
		for _, line := range lines[1:] {
			if line == "" {
				continue
			}
			var l ckptLine
			// A torn tail parses as garbage: skip it, the workload will
			// simply re-run.
			if err := json.Unmarshal([]byte(line), &l); err != nil || l.R == nil {
				continue
			}
			if l.I >= 0 && l.I < workloads {
				done[l.I] = l.R
			}
		}
	case err != nil && !os.IsNotExist(err):
		return nil, nil, fmt.Errorf("crashsim: reading checkpoint: %w", err)
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("crashsim: opening checkpoint: %w", err)
	}
	j := &ckptJournal{f: f}
	if len(data) == 0 {
		hdr, _ := json.Marshal(ckptHeader{V: 1, Kind: "crashsweep", ID: id})
		if _, err := f.Write(append(hdr, '\n')); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("crashsim: writing checkpoint header: %w", err)
		}
		_ = f.Sync()
	}
	return j, done, nil
}

// append journals one completed workload and fsyncs, so a kill loses at
// most the line being written (whose torn tail resume skips).
func (j *ckptJournal) append(i int, r *wlResult) {
	line, err := json.Marshal(ckptLine{I: i, R: r})
	if err != nil {
		return
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return
	}
	_ = j.f.Sync()
}

func (j *ckptJournal) Close() error { return j.f.Close() }
