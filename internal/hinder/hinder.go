// Package hinder detects the CRASH scale's Hindering failures — calls
// that report an *incorrect* error indication, "such as the wrong error
// reporting code" (paper §2).  The paper could measure these "in only
// some situations" requiring manual analysis; this package mechanizes
// that analysis as an oracle of single-exceptional-value probes whose
// correct error code is unambiguous from the API documentation.
package hinder

import (
	"fmt"

	"ballista/internal/api"
	"ballista/internal/catalog"
	"ballista/internal/core"
	"ballista/internal/osprofile"
)

// Probe is one oracle entry: a call, a specific test case identified by
// pool value names, and the set of acceptable error codes.
type Probe struct {
	API    catalog.API
	MuT    string
	Values []string // one pool value name per parameter
	// Expect is the set of documented-correct error codes (GetLastError
	// values for Win32, errno for POSIX/C).
	Expect []uint32
	// Desc says what the probe checks.
	Desc string
}

// Result is a probe's outcome.
type Result struct {
	Probe Probe
	// Class is the observed CRASH class; only RawError results can be
	// judged for Hindering.
	Class core.RawClass
	// Code is the reported error code.
	Code uint32
	// Hindering: an error was reported with a wrong code.
	Hindering bool
}

// Win32Probes is the oracle for the Win32 surface.
func Win32Probes() []Probe {
	return []Probe{
		{catalog.Win32, "CloseHandle", []string{"GARBAGE"},
			[]uint32{api.ErrorInvalidHandle}, "garbage handle -> ERROR_INVALID_HANDLE"},
		{catalog.Win32, "FlushFileBuffers", []string{"GARBAGE"},
			[]uint32{api.ErrorInvalidHandle}, "garbage handle -> ERROR_INVALID_HANDLE"},
		{catalog.Win32, "SetEvent", []string{"CLOSED"},
			[]uint32{api.ErrorInvalidHandle}, "closed handle -> ERROR_INVALID_HANDLE"},
		{catalog.Win32, "DeleteFile", []string{"MISSING_DIR_COMPONENT"},
			[]uint32{api.ErrorFileNotFound, api.ErrorPathNotFound}, "missing path -> *_NOT_FOUND"},
		{catalog.Win32, "DeleteFile", []string{"ILLEGAL_CHARS"},
			[]uint32{api.ErrorInvalidName}, "wildcard chars -> ERROR_INVALID_NAME"},
		{catalog.Win32, "RemoveDirectory", []string{"READONLY_FILE"},
			[]uint32{api.ErrorPathNotFound, api.ErrorDirNotEmpty, api.ErrorAccessDenied},
			"file as directory"},
		{catalog.Win32, "GetStdHandle", []string{"ZERO"},
			[]uint32{api.ErrorInvalidParameter}, "bad slot -> ERROR_INVALID_PARAMETER"},
		{catalog.Win32, "TlsFree", []string{"MAXDWORD"},
			[]uint32{api.ErrorInvalidParameter}, "wild index -> ERROR_INVALID_PARAMETER"},
		{catalog.Win32, "GetFileAttributes", []string{"MISSING_DIR_COMPONENT"},
			[]uint32{api.ErrorFileNotFound, api.ErrorPathNotFound}, "missing path"},
		{catalog.Win32, "SetFilePointer", []string{"FILE_READ", "MAXINT", "NULL", "THREE"},
			[]uint32{api.ErrorInvalidParameter}, "bad move method"},
	}
}

// POSIXProbes is the oracle for the Linux surface.
func POSIXProbes() []Probe {
	return []Probe{
		{catalog.POSIX, "close", []string{"NEG_ONE"},
			[]uint32{api.EBADF}, "bad fd -> EBADF"},
		{catalog.POSIX, "fsync", []string{"UNOPENED_99"},
			[]uint32{api.EBADF}, "unopened fd -> EBADF"},
		{catalog.POSIX, "unlink", []string{"MISSING_DIR_COMPONENT"},
			[]uint32{api.ENOENT}, "missing path -> ENOENT"},
		{catalog.POSIX, "lseek", []string{"OPEN_FILE", "ZERO", "THREE"},
			[]uint32{api.EINVAL}, "bad whence -> EINVAL"},
		{catalog.POSIX, "kill", []string{"SELF", "SIXTY_FOUR"},
			[]uint32{api.EINVAL}, "bad signal -> EINVAL"},
		{catalog.POSIX, "rmdir", []string{"READONLY_FILE"},
			[]uint32{api.ENOTDIR}, "file as directory -> ENOTDIR"},
	}
}

// ProbesFor returns the oracle for one OS variant.
func ProbesFor(o osprofile.OS) []Probe {
	if o == osprofile.Linux {
		return POSIXProbes()
	}
	probes := Win32Probes()
	out := probes[:0]
	supported := make(map[string]bool)
	for _, m := range catalog.MuTsFor(o) {
		supported[m.Name] = true
	}
	for _, p := range probes {
		if supported[p.MuT] {
			out = append(out, p)
		}
	}
	return out
}

// Audit runs every oracle probe against a runner and classifies
// Hindering failures.
func Audit(runner *core.Runner, reg *core.Registry, o osprofile.OS) ([]Result, error) {
	var out []Result
	for _, p := range ProbesFor(o) {
		m, ok := catalog.ByName(p.API, p.MuT)
		if !ok {
			return nil, fmt.Errorf("hinder: unknown MuT %q", p.MuT)
		}
		tc, err := caseFor(reg, m, p.Values)
		if err != nil {
			return nil, err
		}
		// A fresh process per probe: run in isolation and read the
		// reported code via a single-call sequence (the error code
		// lives in the outcome, surfaced through RunProbe).
		cls, code, err := runner.RunProbe(m, tc, false)
		if err != nil {
			return nil, err
		}
		r := Result{Probe: p, Class: cls, Code: code}
		if cls == core.RawError {
			r.Hindering = true
			for _, want := range p.Expect {
				if code == want {
					r.Hindering = false
					break
				}
			}
		}
		out = append(out, r)
	}
	return out, nil
}

// HinderingCount tallies misreported codes.
func HinderingCount(rs []Result) int {
	n := 0
	for _, r := range rs {
		if r.Hindering {
			n++
		}
	}
	return n
}

func caseFor(reg *core.Registry, m catalog.MuT, values []string) (core.Case, error) {
	if len(values) != len(m.Params) {
		return nil, fmt.Errorf("hinder: %s has %d params, probe names %d values",
			m.Name, len(m.Params), len(values))
	}
	tc := make(core.Case, len(values))
	for i, want := range values {
		dt, ok := reg.Lookup(m.Params[i])
		if !ok {
			return nil, fmt.Errorf("hinder: unknown type %q", m.Params[i])
		}
		found := false
		for vi, v := range dt.Values {
			if v.Name == want {
				tc[i] = vi
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("hinder: value %s/%s not in pool", m.Params[i], want)
		}
	}
	return tc, nil
}
