package hinder

import (
	"testing"

	"ballista/internal/catalog"
	"ballista/internal/clib"
	"ballista/internal/core"
	"ballista/internal/osprofile"
	"ballista/internal/posixapi"
	"ballista/internal/suite"
	"ballista/internal/winapi"
)

var (
	clibImpls  = clib.Impls()
	win32Impls = winapi.Impls()
	posixImpls = posixapi.Impls()
)

func dispatch(m catalog.MuT) (core.Impl, bool) {
	switch m.API {
	case catalog.CLib:
		impl, ok := clibImpls[m.Name]
		return impl, ok
	case catalog.Win32:
		impl, ok := win32Impls[m.Name]
		return impl, ok
	case catalog.POSIX:
		impl, ok := posixImpls[m.Name]
		return impl, ok
	default:
		return nil, false
	}
}

func audit(t *testing.T, o osprofile.OS) []Result {
	t.Helper()
	runner := core.NewRunner(
		core.Config{OS: o, Cap: core.DefaultCap, StopMuTOnCrash: true},
		suite.NewRegistry(), dispatch, suite.SetupFixtures)
	rs, err := Audit(runner, suite.NewRegistry(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("empty oracle")
	}
	return rs
}

// TestPlateauSystemsReportCorrectCodes: Linux and the NT family pass the
// whole oracle — every probed error carries a documented code.
func TestPlateauSystemsReportCorrectCodes(t *testing.T) {
	for _, o := range []osprofile.OS{osprofile.Linux, osprofile.WinNT, osprofile.Win2000} {
		for _, r := range audit(t, o) {
			if r.Hindering {
				t.Errorf("%s: %s %v reported code %d (%s)", o, r.Probe.MuT, r.Probe.Values, r.Code, r.Probe.Desc)
			}
			if r.Class != core.RawError {
				t.Errorf("%s: probe %s %v classified %v, want an error return", o, r.Probe.MuT, r.Probe.Values, r.Class)
			}
		}
	}
}

// TestNineXMisreportsSomeCodes: the 9x family exhibits Hindering
// failures — wrong GetLastError codes on a deterministic subset of error
// sites (paper §2's "incorrect error indication such as the wrong error
// reporting code").
func TestNineXMisreportsSomeCodes(t *testing.T) {
	total := 0
	for _, o := range []osprofile.OS{osprofile.Win95, osprofile.Win98, osprofile.Win98SE, osprofile.WinCE} {
		total += HinderingCount(audit(t, o))
	}
	if total == 0 {
		t.Error("no Hindering failures found across the 9x family")
	}
}

// TestHinderingDeterministic: the same probe misreports the same way on
// every run.
func TestHinderingDeterministic(t *testing.T) {
	a := audit(t, osprofile.Win98)
	b := audit(t, osprofile.Win98)
	for i := range a {
		if a[i].Code != b[i].Code || a[i].Hindering != b[i].Hindering {
			t.Errorf("probe %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}
