// Package osprofile defines the seven simulated operating-system variants
// the paper tests — Windows 95, 98, 98 SE, NT 4.0, 2000, CE 2.11 and
// Linux (RedHat 6.0 with glibc) — as behaviour profiles: the kernel
// architecture, the C-library personality, the user-mode stub policy for
// non-probing kernels, and the per-function defect tables transcribed
// from the paper's Table 3.
package osprofile

import (
	"strings"

	"ballista/internal/api"
	"ballista/internal/sim/kern"
)

// OS identifies a simulated operating system variant.
type OS int

// The seven systems under test, in the paper's reporting order.
const (
	Linux OS = iota
	Win95
	Win98
	Win98SE
	WinNT
	Win2000
	WinCE
)

// All lists every OS in reporting order.
func All() []OS {
	return []OS{Linux, Win95, Win98, Win98SE, WinNT, Win2000, WinCE}
}

// DesktopWindows lists the five desktop Windows variants (the set the
// paper's Figure 2 silent-failure voting runs over).
func DesktopWindows() []OS {
	return []OS{Win95, Win98, Win98SE, WinNT, Win2000}
}

// String returns the marketing name.
func (o OS) String() string {
	switch o {
	case Linux:
		return "Linux"
	case Win95:
		return "Windows 95"
	case Win98:
		return "Windows 98"
	case Win98SE:
		return "Windows 98 SE"
	case WinNT:
		return "Windows NT"
	case Win2000:
		return "Windows 2000"
	case WinCE:
		return "Windows CE"
	default:
		return "unknown OS"
	}
}

// Windows reports whether the variant exposes the Win32 API (vs POSIX).
func (o OS) Windows() bool { return o != Linux }

// Profile is a fully-resolved OS behaviour model.
type Profile struct {
	OS     OS
	Name   string
	Arch   kern.Arch
	Traits api.Traits

	// defects maps function name -> Table 3 defect.
	defects map[string]api.DefectSpec
}

// Defect returns the Table 3 defect for a function, or nil.
func (p *Profile) Defect(fn string) *api.DefectSpec {
	d, ok := p.defects[fn]
	if !ok {
		return nil
	}
	return &d
}

// DefectFunctions returns the names of all functions carrying defects,
// for the Table 3 reproduction.
func (p *Profile) DefectFunctions() []string {
	out := make([]string, 0, len(p.defects))
	for fn := range p.defects {
		out = append(out, fn)
	}
	return out
}

// NewKernel boots a machine of this profile's architecture.
func (p *Profile) NewKernel() *kern.Kernel { return kern.New(p.Arch) }

// Get returns the profile for an OS variant.
func Get(o OS) *Profile {
	switch o {
	case Linux:
		return linuxProfile()
	case Win95:
		return win9xProfile(Win95)
	case Win98:
		return win9xProfile(Win98)
	case Win98SE:
		return win9xProfile(Win98SE)
	case WinNT:
		return ntProfile(WinNT)
	case Win2000:
		return ntProfile(Win2000)
	case WinCE:
		return ceProfile()
	default:
		return nil
	}
}

func linuxProfile() *Profile {
	name := Linux.String()
	return &Profile{
		OS:   Linux,
		Name: name,
		Arch: kern.ArchUnix,
		Traits: api.Traits{
			OSName:      name,
			Unix:        true,
			ProbeKernel: true,
			// glibc personality: dereference-first stdio and heap, raw
			// ctype table lookups, blocking console reads, errno (not
			// trap) floating-point domain errors.
			CLibValidatesStreams: false,
			CLibValidatesHeap:    false,
			CTypeBoundsChecked:   false,
			StdinBlocks:          true,
			MathSEH:              false,
		},
		defects: nil, // no Catastrophic failures observed on Linux
	}
}

func ntProfile(o OS) *Profile {
	name := o.String()
	return &Profile{
		OS:   o,
		Name: name,
		Arch: kern.ArchNT,
		Traits: api.Traits{
			OSName:      name,
			ProbeKernel: true,
			// msvcrt personality: validated streams and heap, bounds-
			// checked ctype tables, EOF console reads, SEH floating-point
			// domain errors.
			CLibValidatesStreams: true,
			CLibValidatesHeap:    true,
			CTypeBoundsChecked:   true,
			MathSEH:              true,
			StrWordReads:         true,
		},
		defects: nil, // no Catastrophic failures observed on NT/2000
	}
}

// Stub-policy basis points for the non-probing kernels: of the invalid-
// pointer paths not covered by a probing kernel, this fraction returns an
// error code, this fraction silently reports success, and the remainder
// dereferences and takes an access violation.  The split is the paper's
// observed 9x behaviour: lower Abort rates than NT but substantial Silent
// rates.
const (
	stub9xErrorBP  = 4200
	stub9xSilentBP = 3300
	stubCEErrorBP  = 3600
	stubCESilentBP = 2400
	// wrongCode9xBP: fraction of 9x error sites that misreport the error
	// code (Hindering failures, CRASH's "H").
	wrongCode9xBP = 1600
	wrongCodeCEBP = 2100
)

func win9xProfile(o OS) *Profile {
	name := o.String()
	p := &Profile{
		OS:   o,
		Name: name,
		Arch: kern.Arch9x,
		Traits: api.Traits{
			OSName:       name,
			ProbeKernel:  false,
			SharedArena:  true,
			StubErrorBP:  stub9xErrorBP,
			StubSilentBP: stub9xSilentBP,
			WrongCodeBP:  wrongCode9xBP,
			// Same msvcrt as the NT family.
			CLibValidatesStreams: true,
			CLibValidatesHeap:    true,
			CTypeBoundsChecked:   true,
			MathSEH:              true,
			StrWordReads:         true,
		},
	}
	p.defects = desktopDefects(o)
	return p
}

func ceProfile() *Profile {
	name := WinCE.String()
	p := &Profile{
		OS:   WinCE,
		Name: name,
		Arch: kern.ArchCE,
		Traits: api.Traits{
			OSName:       name,
			ProbeKernel:  false,
			SharedArena:  true,
			StubErrorBP:  stubCEErrorBP,
			StubSilentBP: stubCESilentBP,
			WrongCodeBP:  wrongCodeCEBP,
			// The CE CRT: bounds-checked ctype, but its stdio layer hands
			// stream buffer pointers straight to the kernel — the cause
			// of the paper's seventeen Catastrophic C functions.
			CLibValidatesStreams: false,
			CLibValidatesHeap:    true,
			CTypeBoundsChecked:   true,
			MathSEH:              true,
			StrWordReads:         true,
			StdioRawKernel:       true,
			WidePreferred:        true,
		},
	}
	p.defects = ceDefects()
	return p
}

// AblateProbing builds the DESIGN.md §7 ablation profile: the given OS
// with kernel pointer probing switched off and the shared-arena
// architecture substituted, inheriting the donor's Table 3 defect table.
// Running the NT profile through this ablation demonstrates that probing
// is what separates "thrown exception" from "machine crash": NT minus
// probing behaves like Windows 98.
func AblateProbing(o OS, donor OS) *Profile {
	p := Get(o)
	d := Get(donor)
	p.Name = p.Name + " (probing off)"
	p.Arch = kern.Arch9x
	p.Traits.ProbeKernel = false
	p.Traits.SharedArena = true
	p.Traits.StubErrorBP = d.Traits.StubErrorBP
	p.Traits.StubSilentBP = d.Traits.StubSilentBP
	p.defects = d.defects
	return p
}

// Parse resolves a command-line / wire OS name ("win98", "linux", ...).
func Parse(name string) (OS, bool) {
	switch strings.ToLower(name) {
	case "linux":
		return Linux, true
	case "win95", "windows95":
		return Win95, true
	case "win98", "windows98":
		return Win98, true
	case "win98se", "windows98se":
		return Win98SE, true
	case "winnt", "nt", "windowsnt":
		return WinNT, true
	case "win2000", "win2k", "windows2000":
		return Win2000, true
	case "wince", "ce", "windowsce":
		return WinCE, true
	default:
		return Linux, false
	}
}

// WireName returns the canonical short name Parse accepts.
func (o OS) WireName() string {
	switch o {
	case Linux:
		return "linux"
	case Win95:
		return "win95"
	case Win98:
		return "win98"
	case Win98SE:
		return "win98se"
	case WinNT:
		return "winnt"
	case Win2000:
		return "win2000"
	case WinCE:
		return "wince"
	default:
		return "unknown"
	}
}
