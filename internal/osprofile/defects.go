package osprofile

import (
	"ballista/internal/api"
	"ballista/internal/sim/kern"
)

// The defect tables below transcribe the paper's Table 3: every function
// that exhibited Catastrophic failures, per OS.  Mechanisms:
//
//   - MechRawOut / MechRawIn — the kernel accesses the given parameter
//     without probing.  On a shared-arena machine an invalid pointer
//     crashes the OS immediately; these failures reproduce from a single
//     test case (e.g. Listing 1).
//   - MechCorrupt with Amount=kern.CorruptionStep — the trigger damages
//     shared kernel state; one hit survives, a campaign's worth crosses
//     the crash threshold.  These are the paper's "*" entries, which
//     "could not be reproduced outside of the test harness".
//   - MechCorrupt with an Amount above the crash threshold — an immediate
//     crash not routed through a raw pointer access (HeapCreate's and
//     VirtualAlloc's size-driven crashes).
//
// ImmediateCorrupt is used for the latter.
const ImmediateCorrupt = kern.DefaultCorruptionLimit + 1

func harnessOnly() api.DefectSpec {
	return api.DefectSpec{Mech: api.MechCorrupt, Amount: kern.CorruptionStep}
}

func rawOut(param int) api.DefectSpec {
	return api.DefectSpec{Mech: api.MechRawOut, Param: param}
}

func rawIn(param int) api.DefectSpec {
	return api.DefectSpec{Mech: api.MechRawIn, Param: param}
}

// desktopDefects returns the Table 3 rows for Windows 95 / 98 / 98 SE.
func desktopDefects(o OS) map[string]api.DefectSpec {
	d := map[string]api.DefectSpec{
		// Shared by all three 9x variants.
		"DuplicateHandle":            harnessOnly(), // I/O Primitives, "*"
		"GetFileInformationByHandle": rawOut(1),     // File/Directory Access
		"GetThreadContext":           rawOut(1),     // Process Environment (Listing 1)
		"MsgWaitForMultipleObjects":  rawIn(1),      // Process Primitives
	}
	switch o {
	case Win95:
		d["FileTimeToSystemTime"] = rawOut(1)                                             // File/Directory Access
		d["HeapCreate"] = api.DefectSpec{Mech: api.MechCorrupt, Amount: ImmediateCorrupt} // Memory Management
		d["ReadProcessMemory"] = harnessOnly()                                            // Process Primitives, "*"
		d["fwrite"] = harnessOnly()                                                       // C I/O stream, "*"
	case Win98:
		d["MsgWaitForMultipleObjectsEx"] = harnessOnly() // "*" (not in Win95's API)
		d["fwrite"] = harnessOnly()                      // "*"
		d["strncpy"] = harnessOnly()                     // C string, "*"
	case Win98SE:
		d["MsgWaitForMultipleObjectsEx"] = harnessOnly() // "*"
		d["CreateThread"] = harnessOnly()                // "*" (new in SE)
		d["strncpy"] = harnessOnly()                     // "*" (fwrite fixed in SE)
	}
	return d
}

// ceDefects returns the Table 3 rows for Windows CE 2.11.  The seventeen
// Catastrophic C functions sharing the invalid-FILE* cause are not listed
// here: they arise mechanically from the CE CRT's StdioRawKernel trait
// (see internal/clib).
func ceDefects() map[string]api.DefectSpec {
	return map[string]api.DefectSpec{
		"CreateThread":                harnessOnly(), // "*"
		"GetThreadContext":            rawOut(1),
		"SetThreadContext":            rawIn(1),
		"InterlockedIncrement":        harnessOnly(), // "*"
		"InterlockedDecrement":        harnessOnly(), // "*"
		"InterlockedExchange":         harnessOnly(), // "*"
		"MsgWaitForMultipleObjects":   rawIn(1),
		"MsgWaitForMultipleObjectsEx": harnessOnly(), // "*"
		"ReadProcessMemory":           harnessOnly(), // "*"
		"VirtualAlloc":                {Mech: api.MechCorrupt, Amount: ImmediateCorrupt},
		// The UNICODE strncpy (_tcsncpy/wcsncpy) crashed where the ASCII
		// variant did not.
		"strncpy": {Mech: api.MechCorrupt, Amount: kern.CorruptionStep, WideOnly: true},
	}
}

// CatastrophicByOS returns, for documentation and the Table 3
// reproduction, the defect-listed function names per OS (the CE stdio
// seventeen are contributed by the clib layer at runtime and are not in
// this static table).
func CatastrophicByOS() map[OS][]string {
	out := make(map[OS][]string)
	for _, o := range All() {
		p := Get(o)
		out[o] = p.DefectFunctions()
	}
	return out
}
