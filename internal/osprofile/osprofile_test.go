package osprofile

import (
	"strings"
	"testing"

	"ballista/internal/api"
	"ballista/internal/sim/kern"
)

func TestProfileArchitectures(t *testing.T) {
	tests := []struct {
		os        OS
		probing   bool
		shared    bool
		unix      bool
		validates bool // msvcrt stream validation
	}{
		{Linux, true, false, true, false},
		{Win95, false, true, false, true},
		{Win98, false, true, false, true},
		{Win98SE, false, true, false, true},
		{WinNT, true, false, false, true},
		{Win2000, true, false, false, true},
		{WinCE, false, true, false, false},
	}
	for _, tt := range tests {
		p := Get(tt.os)
		if p.Traits.ProbeKernel != tt.probing {
			t.Errorf("%s: ProbeKernel = %v", tt.os, p.Traits.ProbeKernel)
		}
		if p.Traits.SharedArena != tt.shared {
			t.Errorf("%s: SharedArena = %v", tt.os, p.Traits.SharedArena)
		}
		if p.Arch.SharedSystemArena != tt.shared {
			t.Errorf("%s: Arch.SharedSystemArena = %v", tt.os, p.Arch.SharedSystemArena)
		}
		if p.Traits.Unix != tt.unix {
			t.Errorf("%s: Unix = %v", tt.os, p.Traits.Unix)
		}
		if p.Traits.CLibValidatesStreams != tt.validates {
			t.Errorf("%s: CLibValidatesStreams = %v", tt.os, p.Traits.CLibValidatesStreams)
		}
	}
}

func TestCTypeBoundsCheckedEverywhereButGlibc(t *testing.T) {
	for _, o := range All() {
		want := o != Linux
		if got := Get(o).Traits.CTypeBoundsChecked; got != want {
			t.Errorf("%s: CTypeBoundsChecked = %v, want %v", o, got, want)
		}
	}
}

func TestOnlyCEHasRawStdio(t *testing.T) {
	for _, o := range All() {
		want := o == WinCE
		if got := Get(o).Traits.StdioRawKernel; got != want {
			t.Errorf("%s: StdioRawKernel = %v, want %v", o, got, want)
		}
		if got := Get(o).Traits.WidePreferred; got != want {
			t.Errorf("%s: WidePreferred = %v, want %v", o, got, want)
		}
	}
}

// TestDefectDeltas pins the paper's narrative about how the defect set
// evolved across the 9x family.
func TestDefectDeltas(t *testing.T) {
	has := func(o OS, fn string) bool { return Get(o).Defect(fn) != nil }

	// fwrite crashed 95 and 98; "eliminated ... in the C library function
	// fwrite()" in 98 SE.
	if !has(Win95, "fwrite") || !has(Win98, "fwrite") || has(Win98SE, "fwrite") {
		t.Error("fwrite defect evolution wrong")
	}
	// strncpy crashed 98 and 98 SE but not 95.
	if has(Win95, "strncpy") || !has(Win98, "strncpy") || !has(Win98SE, "strncpy") {
		t.Error("strncpy defect evolution wrong")
	}
	// CreateThread is new in 98 SE.
	if has(Win95, "CreateThread") || has(Win98, "CreateThread") || !has(Win98SE, "CreateThread") {
		t.Error("CreateThread defect evolution wrong")
	}
	// Windows 95's exclusives.
	for _, fn := range []string{"FileTimeToSystemTime", "HeapCreate", "ReadProcessMemory"} {
		if !has(Win95, fn) || has(Win98, fn) {
			t.Errorf("%s should be Windows 95 only", fn)
		}
	}
	// The NT family and Linux carry no defects at all.
	for _, o := range []OS{Linux, WinNT, Win2000} {
		if n := len(Get(o).DefectFunctions()); n != 0 {
			t.Errorf("%s has %d defects, want 0", o, n)
		}
	}
	// CE's strncpy defect is UNICODE-only.
	d := Get(WinCE).Defect("strncpy")
	if d == nil || !d.WideOnly {
		t.Error("CE strncpy defect should be WideOnly")
	}
}

// TestImmediateVsHarnessOnly pins the `*` mechanics: Listing 1's
// GetThreadContext is an immediate raw-out defect; DuplicateHandle is
// sub-threshold corruption.
func TestImmediateVsHarnessOnly(t *testing.T) {
	p := Get(Win98)
	gtc := p.Defect("GetThreadContext")
	if gtc == nil || gtc.Mech != api.MechRawOut || gtc.Param != 1 {
		t.Errorf("GetThreadContext defect: %+v", gtc)
	}
	dup := p.Defect("DuplicateHandle")
	if dup == nil || dup.Mech != api.MechCorrupt || dup.Amount > kern.DefaultCorruptionLimit {
		t.Errorf("DuplicateHandle defect should be harness-only corruption: %+v", dup)
	}
	hc := Get(Win95).Defect("HeapCreate")
	if hc == nil || hc.Amount <= kern.DefaultCorruptionLimit {
		t.Errorf("Win95 HeapCreate should crash immediately: %+v", hc)
	}
}

func TestDefectReturnsCopy(t *testing.T) {
	p := Get(Win98)
	d1 := p.Defect("GetThreadContext")
	d1.Param = 99 // mutating the returned value must not poison the table
	d2 := p.Defect("GetThreadContext")
	if d2.Param == 99 {
		t.Error("Defect returned a shared pointer into the table")
	}
}

func TestAblateProbing(t *testing.T) {
	p := AblateProbing(WinNT, Win98)
	if p.Traits.ProbeKernel || !p.Traits.SharedArena {
		t.Errorf("ablated traits: %+v", p.Traits)
	}
	if !p.Arch.SharedSystemArena {
		t.Error("ablated arch not shared-arena")
	}
	if p.Defect("GetThreadContext") == nil {
		t.Error("ablation did not inherit the donor defect table")
	}
	if !strings.Contains(p.Name, "probing off") {
		t.Errorf("ablated profile name %q", p.Name)
	}
	// The canonical profile is untouched.
	if Get(WinNT).Defect("GetThreadContext") != nil || !Get(WinNT).Traits.ProbeKernel {
		t.Error("AblateProbing mutated the canonical NT profile")
	}
}

func TestStubPolicySplitsDiffer(t *testing.T) {
	// 95/98/98SE share stub budgets but differ from CE.
	w98 := Get(Win98).Traits
	ce := Get(WinCE).Traits
	if w98.StubErrorBP == 0 || w98.StubSilentBP == 0 {
		t.Error("9x stub budgets unset")
	}
	if w98.StubErrorBP == ce.StubErrorBP && w98.StubSilentBP == ce.StubSilentBP {
		t.Error("CE should differ from the desktop 9x stub split")
	}
	// Probing kernels have no stub budgets.
	if nt := Get(WinNT).Traits; nt.StubErrorBP != 0 || nt.StubSilentBP != 0 {
		t.Error("NT should have no stub budgets")
	}
}

func TestStringerAndOrder(t *testing.T) {
	if len(All()) != 7 {
		t.Fatalf("All() = %d systems", len(All()))
	}
	if All()[0] != Linux || All()[6] != WinCE {
		t.Error("reporting order wrong")
	}
	if len(DesktopWindows()) != 5 {
		t.Error("DesktopWindows should have 5 variants")
	}
	for _, o := range DesktopWindows() {
		if o == Linux || o == WinCE {
			t.Errorf("%s is not desktop Windows", o)
		}
	}
	if OS(99).String() != "unknown OS" {
		t.Error("unknown OS stringer")
	}
}

func TestParseWireNames(t *testing.T) {
	for _, o := range All() {
		got, ok := Parse(o.WireName())
		if !ok || got != o {
			t.Errorf("Parse(WireName(%s)) = %v, %v", o, got, ok)
		}
	}
	if _, ok := Parse("beos"); ok {
		t.Error("Parse accepted an unknown OS")
	}
	if got, ok := Parse("WINNT"); !ok || got != WinNT {
		t.Error("Parse should be case-insensitive")
	}
}
