// Package posixapi implements the 91 POSIX system calls tested on the
// simulated Linux variant.  The Linux kernel architecture probes every
// user pointer at the system-call boundary and returns EFAULT instead of
// faulting — the reason the paper measured far lower Abort rates for
// Linux system calls than for any Windows variant.
package posixapi

import (
	"errors"

	"ballista/internal/api"
	"ballista/internal/sim/fs"
	"ballista/internal/sim/kern"
)

// Impl is a POSIX call implementation.
type Impl = func(c *api.Call)

// Impls returns the implementation registry, keyed by call name.
func Impls() map[string]Impl {
	m := make(map[string]Impl, 91)
	registerIOPrim(m)
	registerMemMgmt(m)
	registerFileDir(m)
	registerProc(m)
	registerEnv(m)
	registerSockets(m)
	return m
}

// ioClamp bounds single-transfer sizes (see winapi).
const ioClamp = 1 << 20

// errnoFor maps filesystem errors onto errno values.
func errnoFor(err error) uint32 {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, fs.ErrNotFound):
		return api.ENOENT
	case errors.Is(err, fs.ErrExists):
		return api.EEXIST
	case errors.Is(err, fs.ErrIsDir):
		return api.EISDIR
	case errors.Is(err, fs.ErrNotDir):
		return api.ENOTDIR
	case errors.Is(err, fs.ErrNotEmpty):
		return api.ENOTEMPTY
	case errors.Is(err, fs.ErrPerm):
		return api.EACCES
	case errors.Is(err, fs.ErrInvalidPath):
		return api.EINVAL
	case errors.Is(err, fs.ErrClosed), errors.Is(err, fs.ErrNotOpen):
		return api.EBADF
	case errors.Is(err, fs.ErrLocked):
		return api.EAGAIN
	case errors.Is(err, fs.ErrNoSpace):
		return api.ENOSPC
	default:
		return api.EIO
	}
}

// fdArg resolves a descriptor argument.
func fdArg(c *api.Call, param int) *kern.FD {
	f := c.P.FD(int(c.Int(param)))
	if f == nil {
		c.FailErrno(api.EBADF)
		return nil
	}
	return f
}

// pathArg reads a path argument with kernel probing.
func pathArg(c *api.Call, param int) (string, bool) {
	s, ok := c.CopyInString(param, c.PtrArg(param))
	if !ok {
		return "", false
	}
	if s == "" {
		c.FailErrno(api.ENOENT)
		return "", false
	}
	if len(s) > 255 {
		c.FailErrno(api.ENAMETOOLONG)
		return "", false
	}
	return s, true
}

func u32b(v uint32) []byte {
	return []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
