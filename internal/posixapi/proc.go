package posixapi

import (
	"ballista/internal/api"
	"ballista/internal/sim/mem"
)

// Signal-range and exec helpers.
const maxSignal = 31 // classic Linux range before RT signals

func registerProc(m map[string]Impl) {
	m["fork"] = func(c *api.Call) {
		child := c.K.NewProcess()
		if child == nil {
			c.FailErrno(api.EAGAIN)
			return
		}
		c.Ret(int64(child.PID))
	}
	m["vfork"] = func(c *api.Call) {
		child := c.K.NewProcess()
		if child == nil {
			c.FailErrno(api.EAGAIN)
			return
		}
		c.Ret(int64(child.PID))
	}
	m["execv"] = execImpl(false)
	m["execve"] = execImpl(true)
	m["execvp"] = execImpl(false)
	m["waitpid"] = func(c *api.Call) {
		if c.U32(2)&^uint32(0x3) != 0 {
			c.FailErrno(api.EINVAL)
			return
		}
		waitCommon(c, int(c.Int(0)), 1, c.U32(2))
	}
	m["wait"] = func(c *api.Call) {
		waitCommon(c, -1, 0, 0)
	}
	m["wait4"] = func(c *api.Call) {
		if c.U32(2)&^uint32(0x3) != 0 {
			c.FailErrno(api.EINVAL)
			return
		}
		if ru := c.PtrArg(3); ru != 0 {
			if !c.CopyOut(3, ru, make([]byte, 72)) {
				return
			}
		}
		waitCommon(c, int(c.Int(0)), 1, c.U32(2))
	}
	m["kill"] = func(c *api.Call) {
		sig := int(c.Int(1))
		if sig < 0 || sig > maxSignal {
			c.FailErrno(api.EINVAL)
			return
		}
		pid := int(c.Int(0))
		switch {
		case pid == c.P.PID:
			if sig == 0 {
				c.Ret(0) // existence probe
				return
			}
			// Delivering a fatal signal to yourself terminates the task.
			c.Signal(uint32(sig))
		case pid == -1, pid == 0:
			c.Ret(0) // broadcast to the (empty) group
		case pid > 0:
			c.FailErrno(api.ESRCH)
		default:
			c.FailErrno(api.ESRCH)
		}
	}
	m["killpg"] = func(c *api.Call) {
		sig := int(c.Int(1))
		if sig < 0 || sig > maxSignal {
			c.FailErrno(api.EINVAL)
			return
		}
		pgrp := int(c.Int(0))
		if pgrp < 0 {
			c.FailErrno(api.EINVAL)
			return
		}
		if pgrp == 0 || pgrp == c.P.PID {
			if sig == 0 {
				c.Ret(0)
				return
			}
			c.Signal(uint32(sig))
			return
		}
		c.FailErrno(api.ESRCH)
	}
	m["raise"] = func(c *api.Call) {
		sig := int(c.Int(0))
		if sig < 0 || sig > maxSignal {
			c.FailErrno(api.EINVAL)
			return
		}
		if sig == 0 {
			c.Ret(0)
			return
		}
		c.Signal(uint32(sig))
	}
	m["sigaction"] = func(c *api.Call) {
		sig := int(c.Int(0))
		if sig < 1 || sig > maxSignal || sig == 9 || sig == 19 { // KILL/STOP
			c.FailErrno(api.EINVAL)
			return
		}
		if act := c.PtrArg(1); act != 0 {
			if _, ok := c.CopyIn(1, act, 16); !ok {
				return
			}
		}
		if old := c.PtrArg(2); old != 0 {
			if !c.CopyOut(2, old, make([]byte, 16)) {
				return
			}
		}
		c.Ret(0)
	}
	m["sigprocmask"] = func(c *api.Call) {
		how := int(c.Int(0))
		set := c.PtrArg(1)
		if set != 0 && (how < 0 || how > 2) {
			c.FailErrno(api.EINVAL)
			return
		}
		if set != 0 {
			if _, ok := c.CopyIn(1, set, 8); !ok {
				return
			}
		}
		if old := c.PtrArg(2); old != 0 {
			if !c.CopyOut(2, old, make([]byte, 8)) {
				return
			}
		}
		c.Ret(0)
	}
	m["sigpending"] = func(c *api.Call) {
		if !c.CopyOut(0, c.PtrArg(0), make([]byte, 8)) {
			return
		}
		c.Ret(0)
	}
	m["alarm"] = func(c *api.Call) {
		c.Ret(0) // no previous alarm
	}
	m["sleep"] = func(c *api.Call) {
		s := c.U32(0)
		if s > 1000000 {
			// A multi-week sleep never returns within the campaign.
			c.Hang()
			return
		}
		c.K.Sleep(s * 1000)
		c.Ret(0)
	}
	m["nanosleep"] = func(c *api.Call) {
		req := c.PtrArg(0)
		b, ok := c.CopyIn(0, req, 16)
		if !ok {
			return
		}
		sec := int32(le32(b))
		nsec := int32(le32(b[4:]))
		if sec < 0 || nsec < 0 || nsec >= 1000000000 {
			c.FailErrno(api.EINVAL)
			return
		}
		if uint32(sec) > 1000000 {
			c.Hang()
			return
		}
		c.K.Sleep(uint32(sec) * 1000)
		if rem := c.PtrArg(1); rem != 0 {
			if !c.CopyOut(1, rem, make([]byte, 16)) {
				return
			}
		}
		c.Ret(0)
	}
	m["sched_yield"] = func(c *api.Call) {
		c.K.Sleep(0)
		c.Ret(0)
	}
	m["getitimer"] = func(c *api.Call) {
		which := int(c.Int(0))
		if which < 0 || which > 2 {
			c.FailErrno(api.EINVAL)
			return
		}
		if !c.CopyOut(1, c.PtrArg(1), make([]byte, 16)) {
			return
		}
		c.Ret(0)
	}
	m["setitimer"] = func(c *api.Call) {
		which := int(c.Int(0))
		if which < 0 || which > 2 {
			c.FailErrno(api.EINVAL)
			return
		}
		b, ok := c.CopyIn(1, c.PtrArg(1), 16)
		if !ok {
			return
		}
		if int32(le32(b[4:])) >= 1000000 || int32(le32(b[12:])) >= 1000000 {
			c.FailErrno(api.EINVAL)
			return
		}
		if old := c.PtrArg(2); old != 0 {
			if !c.CopyOut(2, old, make([]byte, 16)) {
				return
			}
		}
		c.Ret(0)
	}
	m["ptrace"] = func(c *api.Call) {
		req := int(c.Int(0))
		switch req {
		case 0: // PTRACE_TRACEME
			c.Ret(0)
		case 1, 2, 3: // PEEK*
			pid := int(c.Int(1))
			if pid != c.P.PID {
				c.FailErrno(api.ESRCH)
				return
			}
			addr := c.PtrArg(2)
			if !c.K.Probe(c.P.AS, addr, 4, false) {
				c.FailErrno(api.EIO)
				return
			}
			v, _ := c.P.AS.ReadU32(addr)
			c.Ret(int64(v))
		case 7, 8: // CONT / KILL
			if int(c.Int(1)) != c.P.PID {
				c.FailErrno(api.ESRCH)
				return
			}
			c.Ret(0)
		default:
			if req < 0 || req > 24 {
				c.FailErrno(api.EIO)
				return
			}
			c.FailErrno(api.ESRCH)
		}
	}
}

func execImpl(hasEnv bool) Impl {
	return func(c *api.Call) {
		path, ok := pathArg(c, 0)
		if !ok {
			return
		}
		argv := c.PtrArg(1)
		if argv == 0 {
			c.FailErrno(api.EFAULT)
			return
		}
		if !scanPtrArray(c, 1, argv) {
			return
		}
		if hasEnv {
			envp := c.PtrArg(2)
			if envp != 0 && !scanPtrArray(c, 2, envp) {
				return
			}
		}
		n, err := c.K.FS.Stat(path)
		if err != nil {
			c.FailErrno(errnoFor(err))
			return
		}
		if n.IsDir() {
			c.FailErrno(api.EACCES)
			return
		}
		if n.Mode&0o1 == 0 {
			c.FailErrno(api.EACCES)
			return
		}
		// A successful exec replaces the image; the call never returns.
		// For the harness this is a normal completion.
		c.Ret(0)
	}
}

// scanPtrArray walks a NULL-terminated pointer array, validating each
// string, as execve's kernel-side argument copy does.  The walk is
// bounded by the probe failing at the first unmapped word.
func scanPtrArray(c *api.Call, param int, base mem.Addr) bool {
	for i := uint32(0); i < 4096; i++ {
		addr := base + mem.Addr(4*i)
		if !c.K.Probe(c.P.AS, addr, 4, false) {
			c.FailErrno(api.EFAULT)
			return false
		}
		v, _ := c.P.AS.ReadU32(addr)
		if v == 0 {
			return true
		}
		if !c.K.Probe(c.P.AS, mem.Addr(v), 1, false) {
			c.FailErrno(api.EFAULT)
			return false
		}
	}
	c.FailErrno(api.E2BIG)
	return false
}

func waitCommon(c *api.Call, pid, statusParam int, opts uint32) {
	// The test process has no children; POSIX mandates ECHILD.  (The
	// status pointer is only written when a child is reaped, so it is
	// never dereferenced here — matching Linux.)
	_ = pid
	_ = opts
	_ = statusParam
	c.FailErrno(api.ECHILD)
}
