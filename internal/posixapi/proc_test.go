package posixapi

import (
	"testing"

	"ballista/internal/api"
	"ballista/internal/sim/mem"
)

func TestSigactionValidation(t *testing.T) {
	k, p := newProc(t)
	act, _ := p.AS.Alloc(16, mem.ProtRW)
	old, _ := p.AS.Alloc(16, mem.ProtRW)
	c := run(t, k, p, "sigaction", api.Int(15), api.Ptr(act), api.Ptr(old))
	if c.Out.Ret != 0 {
		t.Fatalf("sigaction(SIGTERM): %+v", c.Out)
	}
	// SIGKILL and SIGSTOP cannot be caught.
	for _, sig := range []int64{9, 19} {
		c = run(t, k, p, "sigaction", api.Int(sig), api.Ptr(act), api.Ptr(old))
		if c.Out.Err != api.EINVAL {
			t.Errorf("sigaction(%d): %+v", sig, c.Out)
		}
	}
	// Out-of-range signal.
	c = run(t, k, p, "sigaction", api.Int(64), api.Ptr(act), api.Ptr(old))
	if c.Out.Err != api.EINVAL {
		t.Errorf("sigaction(64): %+v", c.Out)
	}
	// Bad act pointer probes to EFAULT.
	c = run(t, k, p, "sigaction", api.Int(15), api.Ptr(0x7F000000), api.Ptr(old))
	if c.Out.Err != api.EFAULT {
		t.Errorf("sigaction bad act: %+v", c.Out)
	}
	// NULL/NULL is a pure query and succeeds.
	c = run(t, k, p, "sigaction", api.Int(15), api.Ptr(0), api.Ptr(0))
	if c.Out.Ret != 0 {
		t.Errorf("sigaction query: %+v", c.Out)
	}
}

func TestSigprocmask(t *testing.T) {
	k, p := newProc(t)
	set, _ := p.AS.Alloc(8, mem.ProtRW)
	c := run(t, k, p, "sigprocmask", api.Int(0), api.Ptr(set), api.Ptr(0))
	if c.Out.Ret != 0 {
		t.Fatalf("sigprocmask: %+v", c.Out)
	}
	c = run(t, k, p, "sigprocmask", api.Int(99), api.Ptr(set), api.Ptr(0))
	if c.Out.Err != api.EINVAL {
		t.Errorf("bad how: %+v", c.Out)
	}
	// how is ignored when set is NULL (Linux semantics).
	c = run(t, k, p, "sigprocmask", api.Int(99), api.Ptr(0), api.Ptr(0))
	if c.Out.Ret != 0 {
		t.Errorf("NULL set ignores how: %+v", c.Out)
	}
}

func TestNanosleepValidation(t *testing.T) {
	k, p := newProc(t)
	ts, _ := p.AS.Alloc(16, mem.ProtRW)
	_ = p.AS.WriteU32(ts, 1) // 1 second
	c := run(t, k, p, "nanosleep", api.Ptr(ts), api.Ptr(0))
	if c.Out.Ret != 0 {
		t.Fatalf("nanosleep: %+v", c.Out)
	}
	// Negative seconds.
	_ = p.AS.WriteU32(ts, 0xFFFFFFFF)
	c = run(t, k, p, "nanosleep", api.Ptr(ts), api.Ptr(0))
	if c.Out.Err != api.EINVAL {
		t.Errorf("negative tv_sec: %+v", c.Out)
	}
	// tv_nsec out of range.
	_ = p.AS.WriteU32(ts, 0)
	_ = p.AS.WriteU32(ts+4, 2_000_000_000)
	c = run(t, k, p, "nanosleep", api.Ptr(ts), api.Ptr(0))
	if c.Out.Err != api.EINVAL {
		t.Errorf("tv_nsec too big: %+v", c.Out)
	}
	// A multi-week sleep can never return within a campaign.
	_ = p.AS.WriteU32(ts, 10_000_000)
	_ = p.AS.WriteU32(ts+4, 0)
	c = run(t, k, p, "nanosleep", api.Ptr(ts), api.Ptr(0))
	if !c.Out.Hung {
		t.Errorf("multi-week nanosleep should hang: %+v", c.Out)
	}
}

func TestSleepHugeHangs(t *testing.T) {
	k, p := newProc(t)
	c := run(t, k, p, "sleep", api.Int(0xFFFFFFFF))
	if !c.Out.Hung {
		t.Errorf("sleep(MAXUINT) should hang: %+v", c.Out)
	}
	c = run(t, k, p, "sleep", api.Int(1))
	if c.Out.Hung || c.Out.Ret != 0 {
		t.Errorf("sleep(1): %+v", c.Out)
	}
}

func TestItimers(t *testing.T) {
	k, p := newProc(t)
	tv, _ := p.AS.Alloc(16, mem.ProtRW)
	c := run(t, k, p, "getitimer", api.Int(0), api.Ptr(tv))
	if c.Out.Ret != 0 {
		t.Fatalf("getitimer: %+v", c.Out)
	}
	c = run(t, k, p, "getitimer", api.Int(3), api.Ptr(tv))
	if c.Out.Err != api.EINVAL {
		t.Errorf("bad which: %+v", c.Out)
	}
	// setitimer validates tv_usec < 1e6.
	_ = p.AS.WriteU32(tv+4, 2_000_000)
	c = run(t, k, p, "setitimer", api.Int(0), api.Ptr(tv), api.Ptr(0))
	if c.Out.Err != api.EINVAL {
		t.Errorf("usec too big: %+v", c.Out)
	}
}

func TestPtrace(t *testing.T) {
	k, p := newProc(t)
	c := run(t, k, p, "ptrace", api.Int(0), api.Int(0), api.Ptr(0), api.Ptr(0))
	if c.Out.Ret != 0 {
		t.Errorf("PTRACE_TRACEME: %+v", c.Out)
	}
	// PEEKTEXT on own mapped memory.
	a, _ := p.AS.Alloc(8, mem.ProtRW)
	_ = p.AS.WriteU32(a, 0xFEEDC0DE)
	c = run(t, k, p, "ptrace", api.Int(1), api.Int(int64(p.PID)), api.Ptr(a), api.Ptr(0))
	if uint32(c.Out.Ret) != 0xFEEDC0DE {
		t.Errorf("PEEKTEXT = %#x: %+v", uint32(c.Out.Ret), c.Out)
	}
	// PEEKTEXT on a wild address: EIO per ptrace convention.
	c = run(t, k, p, "ptrace", api.Int(1), api.Int(int64(p.PID)), api.Ptr(0), api.Ptr(0))
	if c.Out.Err != api.EIO {
		t.Errorf("PEEKTEXT wild: %+v", c.Out)
	}
	c = run(t, k, p, "ptrace", api.Int(1), api.Int(424242), api.Ptr(a), api.Ptr(0))
	if c.Out.Err != api.ESRCH {
		t.Errorf("PEEKTEXT foreign pid: %+v", c.Out)
	}
}

func TestRlimits(t *testing.T) {
	k, p := newProc(t)
	rl, _ := p.AS.Alloc(16, mem.ProtRW)
	c := run(t, k, p, "getrlimit", api.Int(2), api.Ptr(rl))
	if c.Out.Ret != 0 {
		t.Fatalf("getrlimit: %+v", c.Out)
	}
	cur, _ := p.AS.ReadU32(rl)
	maxv, _ := p.AS.ReadU32(rl + 8)
	if cur == 0 || maxv < cur {
		t.Errorf("rlimit values %d/%d", cur, maxv)
	}
	// setrlimit rejects cur > max.
	_ = p.AS.WriteU32(rl, maxv+1000)
	c = run(t, k, p, "setrlimit", api.Int(2), api.Ptr(rl))
	if c.Out.Err != api.EINVAL {
		t.Errorf("cur > max: %+v", c.Out)
	}
	c = run(t, k, p, "getrlimit", api.Int(99), api.Ptr(rl))
	if c.Out.Err != api.EINVAL {
		t.Errorf("bad resource: %+v", c.Out)
	}
}

func TestUnameFillsStruct(t *testing.T) {
	k, p := newProc(t)
	buf, _ := p.AS.Alloc(320, mem.ProtRW)
	c := run(t, k, p, "uname", api.Ptr(buf))
	if c.Out.Ret != 0 {
		t.Fatalf("uname: %+v", c.Out)
	}
	sys, _ := p.AS.CString(buf)
	rel, _ := p.AS.CString(buf + 130)
	if sys != "Linux" || rel != "2.2.5" {
		t.Errorf("uname = %q %q (paper: RedHat 6.0, kernel 2.2.5)", sys, rel)
	}
}

func TestProcessGroups(t *testing.T) {
	k, p := newProc(t)
	c := run(t, k, p, "getpgrp")
	if c.Out.Ret != int64(p.PID) {
		t.Errorf("getpgrp = %d", c.Out.Ret)
	}
	c = run(t, k, p, "setpgid", api.Int(0), api.Int(0))
	if c.Out.Ret != 0 {
		t.Errorf("setpgid(0,0): %+v", c.Out)
	}
	c = run(t, k, p, "setpgid", api.Int(424242), api.Int(0))
	if c.Out.Err != api.ESRCH {
		t.Errorf("setpgid foreign: %+v", c.Out)
	}
	c = run(t, k, p, "setsid")
	if c.Out.Err != api.EPERM {
		t.Errorf("setsid as leader: %+v", c.Out)
	}
	c = run(t, k, p, "getsid", api.Int(0))
	if c.Out.Ret != int64(p.PID) {
		t.Errorf("getsid: %+v", c.Out)
	}
}

func TestGroupsRoundTrip(t *testing.T) {
	k, p := newProc(t)
	// Size query.
	c := run(t, k, p, "getgroups", api.Int(0), api.Ptr(0))
	if c.Out.Ret != 1 {
		t.Fatalf("getgroups(0): %+v", c.Out)
	}
	buf, _ := p.AS.Alloc(16, mem.ProtRW)
	c = run(t, k, p, "getgroups", api.Int(4), api.Ptr(buf))
	if c.Out.Ret != 1 {
		t.Fatalf("getgroups: %+v", c.Out)
	}
	gid, _ := p.AS.ReadU32(buf)
	if gid != 1000 {
		t.Errorf("group = %d", gid)
	}
	c = run(t, k, p, "getgroups", api.Int(-1), api.Ptr(buf))
	if c.Out.Err != api.EINVAL {
		t.Errorf("negative size: %+v", c.Out)
	}
	// setgroups requires privilege.
	c = run(t, k, p, "setgroups", api.Int(1), api.Ptr(buf))
	if c.Out.Err != api.EPERM {
		t.Errorf("setgroups: %+v", c.Out)
	}
}

func TestFcntlDupfd(t *testing.T) {
	k, p := newProc(t)
	path := cstr(t, p, "/bl/readable.txt")
	c := run(t, k, p, "open", api.Ptr(path), api.Int(0), api.Int(0))
	fd := c.Out.Ret
	c = run(t, k, p, "fcntl", api.Int(fd), api.Int(0), api.Int(0))
	if c.Out.Ret <= fd {
		t.Errorf("F_DUPFD = %d", c.Out.Ret)
	}
	c = run(t, k, p, "fcntl", api.Int(fd), api.Int(2), api.Int(1))
	if c.Out.Ret != 0 {
		t.Fatalf("F_SETFD: %+v", c.Out)
	}
	c = run(t, k, p, "fcntl", api.Int(fd), api.Int(1), api.Int(0))
	if c.Out.Ret != 1 {
		t.Errorf("F_GETFD = %d", c.Out.Ret)
	}
	c = run(t, k, p, "fcntl", api.Int(fd), api.Int(99), api.Int(0))
	if c.Out.Err != api.EINVAL {
		t.Errorf("bad cmd: %+v", c.Out)
	}
}

func TestAccessModes(t *testing.T) {
	k, p := newProc(t)
	path := cstr(t, p, "/bl/readable.txt")
	c := run(t, k, p, "access", api.Ptr(path), api.Int(4))
	if c.Out.Ret != 0 {
		t.Errorf("access R_OK: %+v", c.Out)
	}
	c = run(t, k, p, "access", api.Ptr(path), api.Int(1))
	if c.Out.Err != api.EACCES {
		t.Errorf("access X_OK on data file: %+v", c.Out)
	}
	c = run(t, k, p, "access", api.Ptr(path), api.Int(0xFF))
	if c.Out.Err != api.EINVAL {
		t.Errorf("bad amode: %+v", c.Out)
	}
	missing := cstr(t, p, "/nope")
	c = run(t, k, p, "access", api.Ptr(missing), api.Int(0))
	if c.Out.Err != api.ENOENT {
		t.Errorf("access missing: %+v", c.Out)
	}
}
