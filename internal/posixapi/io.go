package posixapi

import (
	"ballista/internal/api"
	"ballista/internal/sim/kern"
	"ballista/internal/sim/mem"
)

func registerIOPrim(m map[string]Impl) {
	m["close"] = func(c *api.Call) {
		if !c.P.CloseFD(int(c.Int(0))) {
			c.FailErrno(api.EBADF)
			return
		}
		c.Ret(0)
	}
	m["dup"] = func(c *api.Call) {
		f := fdArg(c, 0)
		if f == nil {
			return
		}
		nf := *f
		fd := c.P.AddFD(&nf)
		if fd < 0 {
			c.FailErrno(api.EMFILE)
			return
		}
		c.Ret(int64(fd))
	}
	m["dup2"] = func(c *api.Call) {
		f := fdArg(c, 0)
		if f == nil {
			return
		}
		nfd := int(c.Int(1))
		if nfd < 0 || nfd > 65535 {
			c.FailErrno(api.EBADF)
			return
		}
		if nfd == int(c.Int(0)) {
			c.Ret(int64(nfd))
			return
		}
		c.P.CloseFD(nfd)
		nf := *f
		c.P.AddFDAt(nfd, &nf)
		c.Ret(int64(nfd))
	}
	m["fcntl"] = func(c *api.Call) {
		f := fdArg(c, 0)
		if f == nil {
			return
		}
		switch c.Int(1) {
		case 0: // F_DUPFD
			nf := *f
			fd := c.P.AddFD(&nf)
			if fd < 0 {
				c.FailErrno(api.EMFILE)
				return
			}
			c.Ret(int64(fd))
		case 1: // F_GETFD
			if f.CloseOnExec {
				c.Ret(1)
				return
			}
			c.Ret(0)
		case 2: // F_SETFD
			f.CloseOnExec = c.Int(2)&1 != 0
			c.Ret(0)
		case 3: // F_GETFL
			c.Ret(int64(f.Flags))
		case 4: // F_SETFL
			f.Flags = int(c.Int(2))
			c.Ret(0)
		default:
			c.FailErrno(api.EINVAL)
		}
	}
	m["fdatasync"] = fsyncImpl
	m["fsync"] = fsyncImpl
	m["lseek"] = func(c *api.Call) {
		f := fdArg(c, 0)
		if f == nil {
			return
		}
		if f.Pipe != nil {
			c.FailErrno(api.ESPIPE)
			return
		}
		whence := int(c.Int(2))
		if whence < 0 || whence > 2 {
			c.FailErrno(api.EINVAL)
			return
		}
		pos, err := f.File.Seek(int64(c.Int(1)), whence)
		if err != nil {
			c.FailErrno(api.EINVAL)
			return
		}
		c.Ret(pos)
	}
	m["pipe"] = func(c *api.Call) {
		p := &kern.Pipe{ReadersOpen: 1, WritersOpen: 1, Capacity: 65536, Input: true}
		rfd := c.P.AddFD(&kern.FD{Pipe: p, Read: true})
		if rfd < 0 {
			c.FailErrno(api.EMFILE)
			return
		}
		wfd := c.P.AddFD(&kern.FD{Pipe: p, Write: true})
		if wfd < 0 {
			// Two slots are needed; give back the first rather than leak it.
			c.P.CloseFD(rfd)
			c.FailErrno(api.EMFILE)
			return
		}
		out := append(u32b(uint32(rfd)), u32b(uint32(wfd))...)
		if !c.CopyOut(0, c.PtrArg(0), out) {
			c.P.CloseFD(rfd)
			c.P.CloseFD(wfd)
			return
		}
		c.Ret(0)
	}
	m["read"] = func(c *api.Call) {
		f := fdArg(c, 0)
		if f == nil {
			return
		}
		if !f.Read {
			c.FailErrno(api.EBADF)
			return
		}
		n := c.U32(2)
		if int32(n) < 0 {
			c.FailErrno(api.EINVAL)
			return
		}
		if n == 0 {
			c.Ret(0)
			return
		}
		want := n
		if want > ioClamp {
			want = ioClamp
		}
		// Probe before transfer, as the kernel does.
		if !c.K.Probe(c.P.AS, c.PtrArg(1), minU32(want, 4096), true) {
			c.FailErrno(api.EFAULT)
			return
		}
		var data []byte
		if f.Pipe != nil {
			if len(f.Pipe.Buf) == 0 {
				if f.Pipe.WritersOpen > 0 {
					c.Hang() // blocking read with no writer ever writing
					return
				}
				c.Ret(0)
				return
			}
			take := int(want)
			if take > len(f.Pipe.Buf) {
				take = len(f.Pipe.Buf)
			}
			data = f.Pipe.Buf[:take]
			f.Pipe.Buf = f.Pipe.Buf[take:]
		} else {
			buf := make([]byte, want)
			got, err := f.File.Read(buf)
			if err != nil {
				c.FailErrno(errnoFor(err))
				return
			}
			data = buf[:got]
		}
		if len(data) > 0 && !c.CopyOut(1, c.PtrArg(1), data) {
			return
		}
		c.Ret(int64(len(data)))
	}
	m["write"] = func(c *api.Call) {
		f := fdArg(c, 0)
		if f == nil {
			return
		}
		if !f.Write {
			c.FailErrno(api.EBADF)
			return
		}
		n := c.U32(2)
		if int32(n) < 0 {
			c.FailErrno(api.EINVAL)
			return
		}
		if n == 0 {
			c.Ret(0)
			return
		}
		want := n
		if want > ioClamp {
			want = ioClamp
		}
		data, ok := c.CopyIn(1, c.PtrArg(1), want)
		if !ok {
			return
		}
		if f.Pipe != nil {
			if f.Pipe.ReadersOpen == 0 {
				c.Signal(api.SIGPIPE)
				return
			}
			room := f.Pipe.Capacity - len(f.Pipe.Buf)
			take := len(data)
			if take > room {
				take = room
			}
			f.Pipe.Buf = append(f.Pipe.Buf, data[:take]...)
			c.Ret(int64(take))
			return
		}
		got, err := f.File.Write(data)
		if err != nil {
			c.FailErrno(errnoFor(err))
			return
		}
		c.Ret(int64(got))
	}
}

func fsyncImpl(c *api.Call) {
	f := fdArg(c, 0)
	if f == nil {
		return
	}
	if f.Pipe != nil {
		c.FailErrno(api.EINVAL)
		return
	}
	// Record the commit barrier in the persistence model; the in-cache
	// tree is already current, so this never fails on an open file.
	if f.File != nil {
		_ = f.File.Sync()
	}
	c.Ret(0)
}

func registerMemMgmt(m map[string]Impl) {
	m["mmap"] = func(c *api.Call) {
		addr := c.PtrArg(0)
		length := c.U32(1)
		prot := c.U32(2)
		flags := c.U32(3)
		if length == 0 || prot&^uint32(0x7) != 0 {
			c.FailErrnoRet(-1, api.EINVAL)
			return
		}
		shared := flags & 0x3
		if shared != 1 && shared != 2 {
			c.FailErrnoRet(-1, api.EINVAL)
			return
		}
		anon := flags&0x20 != 0
		if !anon {
			if fdArg(c, 4) == nil {
				return
			}
			if off := int64(c.Int(5)); off < 0 || off&0xFFF != 0 {
				c.FailErrnoRet(-1, api.EINVAL)
				return
			}
		}
		fixed := flags&0x10 != 0
		if fixed {
			if addr == 0 || uint32(addr)&0xFFF != 0 || mem.RegionOf(addr) != mem.RegionUser {
				c.FailErrnoRet(-1, api.EINVAL)
				return
			}
			if err := c.P.AS.Map(addr, length, memProt(prot)); err != nil {
				c.FailErrnoRet(-1, api.ENOMEM)
				return
			}
			c.Ret(int64(uint32(addr)))
			return
		}
		if addr != 0 && uint32(addr)&0xFFF != 0 {
			// A non-fixed hint may be misaligned; the kernel ignores it.
			addr = 0
		}
		a, err := c.P.AS.Alloc(length, memProt(prot))
		if err != nil {
			c.FailErrnoRet(-1, api.ENOMEM)
			return
		}
		c.Ret(int64(uint32(a)))
	}
	m["munmap"] = func(c *api.Call) {
		addr := c.PtrArg(0)
		length := c.U32(1)
		if addr == 0 || uint32(addr)&0xFFF != 0 || length == 0 {
			c.FailErrno(api.EINVAL)
			return
		}
		if mem.RegionOf(addr) != mem.RegionUser {
			c.FailErrno(api.EINVAL)
			return
		}
		_ = c.P.AS.Unmap(addr, length)
		c.Ret(0)
	}
	m["mprotect"] = func(c *api.Call) {
		addr := c.PtrArg(0)
		length := c.U32(1)
		prot := c.U32(2)
		if uint32(addr)&0xFFF != 0 || prot&^uint32(0x7) != 0 {
			c.FailErrno(api.EINVAL)
			return
		}
		if length == 0 {
			c.Ret(0)
			return
		}
		if !c.P.AS.Mapped(addr, length, mem.ProtNone) {
			c.FailErrno(api.ENOMEM)
			return
		}
		_ = c.P.AS.Protect(addr, length, memProt(prot))
		c.Ret(0)
	}
	m["msync"] = func(c *api.Call) {
		addr := c.PtrArg(0)
		flags := c.U32(2)
		if uint32(addr)&0xFFF != 0 || flags&^uint32(0x7) != 0 ||
			(flags&0x1 != 0 && flags&0x4 != 0) || flags&0x5 == 0 {
			c.FailErrno(api.EINVAL)
			return
		}
		if !c.P.AS.Mapped(addr, maxU32(c.U32(1), 1), mem.ProtNone) {
			c.FailErrno(api.ENOMEM)
			return
		}
		c.Ret(0)
	}
	m["mlock"] = mlockImpl
	m["munlock"] = mlockImpl
	m["brk"] = func(c *api.Call) {
		addr := c.PtrArg(0)
		if addr != 0 && mem.RegionOf(addr) != mem.RegionUser {
			c.FailErrno(api.ENOMEM)
			return
		}
		c.Ret(0)
	}
}

func mlockImpl(c *api.Call) {
	addr := c.PtrArg(0)
	length := c.U32(1)
	if uint32(addr)&0xFFF != 0 {
		c.FailErrno(api.EINVAL)
		return
	}
	if length == 0 {
		c.Ret(0)
		return
	}
	if !c.P.AS.Mapped(addr, length, mem.ProtNone) {
		c.FailErrno(api.ENOMEM)
		return
	}
	c.Ret(0)
}

func memProt(prot uint32) mem.Prot {
	var p mem.Prot
	if prot&0x1 != 0 {
		p |= mem.ProtRead
	}
	if prot&0x2 != 0 {
		p |= mem.ProtWrite
	}
	if prot&0x4 != 0 {
		p |= mem.ProtRead // exec implies readable here
	}
	return p
}

func minU32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

func maxU32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}
