package posixapi

import (
	"errors"

	"ballista/internal/api"
	"ballista/internal/sim/kern"
	"ballista/internal/sim/net"
)

// sockErrno maps simulated-network errors onto errno values.
func sockErrno(err error) uint32 {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, net.ErrInUse):
		return api.EADDRINUSE
	case errors.Is(err, net.ErrNoPorts):
		return api.EADDRNOTAVAIL
	case errors.Is(err, net.ErrNotConn):
		return api.ENOTCONN
	case errors.Is(err, net.ErrIsConn):
		return api.EISCONN
	case errors.Is(err, net.ErrRefused):
		return api.ECONNREFUSED
	case errors.Is(err, net.ErrReset):
		return api.ECONNRESET
	case errors.Is(err, net.ErrShutdown):
		return api.EPIPE
	case errors.Is(err, net.ErrClosed):
		return api.EBADF
	default:
		return api.EINVAL
	}
}

// sockArg resolves a descriptor argument to a socket descriptor.
func sockArg(c *api.Call, param int) *kern.FD {
	f := fdArg(c, param)
	if f == nil {
		return nil
	}
	if f.Sock == nil {
		c.FailErrno(api.ENOTSOCK)
		return nil
	}
	return f
}

// readSockaddr validates the (addr, namelen) pair and returns the
// requested port.  A short or negative namelen is EINVAL before the
// copy, as the Linux kernel orders it.
func readSockaddr(c *api.Call, addrParam, lenParam int) (port uint16, ok bool) {
	if nl := int32(c.Int(lenParam)); nl < 16 {
		c.FailErrno(api.EINVAL)
		return 0, false
	}
	b, ok := c.CopyIn(addrParam, c.PtrArg(addrParam), 16)
	if !ok {
		return 0, false
	}
	if fam := uint16(b[0]) | uint16(b[1])<<8; fam != 2 { // AF_INET
		c.FailErrno(api.EAFNOSUPPORT)
		return 0, false
	}
	return uint16(b[2])<<8 | uint16(b[3]), true // network byte order
}

func registerSockets(m map[string]Impl) {
	m["socket"] = func(c *api.Call) {
		af := int32(c.Int(0))
		typ := int32(c.Int(1))
		proto := int32(c.Int(2))
		if af != 2 {
			c.FailErrno(api.EAFNOSUPPORT)
			return
		}
		var kind net.SockKind
		switch typ {
		case 1:
			kind = net.Stream
		case 2:
			kind = net.Dgram
		default:
			c.FailErrno(api.EINVAL)
			return
		}
		switch {
		case proto == 0:
		case proto == 6 && kind == net.Stream: // IPPROTO_TCP
		case proto == 17 && kind == net.Dgram: // IPPROTO_UDP
		default:
			c.FailErrno(api.EPROTONOSUPPORT)
			return
		}
		s := c.K.Net.NewSocket(kind)
		if s == nil {
			c.FailErrno(api.EMFILE) // socket table full
			return
		}
		fd := c.P.AddFD(&kern.FD{Sock: s, Read: true, Write: true})
		if fd < 0 {
			s.Close()
			c.FailErrno(api.EMFILE)
			return
		}
		c.Ret(int64(fd))
	}
	m["bind"] = func(c *api.Call) {
		f := sockArg(c, 0)
		if f == nil {
			return
		}
		port, ok := readSockaddr(c, 1, 2)
		if !ok {
			return
		}
		if err := f.Sock.Bind(port); err != nil {
			c.FailErrno(sockErrno(err))
			return
		}
		c.Ret(0)
	}
	m["listen"] = func(c *api.Call) {
		f := sockArg(c, 0)
		if f == nil {
			return
		}
		if f.Sock.Kind != net.Stream {
			c.FailErrno(api.EOPNOTSUPP)
			return
		}
		if err := f.Sock.Listen(int(int32(c.Int(1)))); err != nil {
			c.FailErrno(sockErrno(err))
			return
		}
		c.Ret(0)
	}
	m["accept"] = func(c *api.Call) {
		f := sockArg(c, 0)
		if f == nil {
			return
		}
		if f.Sock.Kind != net.Stream {
			c.FailErrno(api.EOPNOTSUPP)
			return
		}
		// When a peer address is requested, the addrlen in/out pointer is
		// read up front, EFAULT before the queue is consumed.
		addr := c.PtrArg(1)
		var alen uint32
		if addr != 0 {
			b, ok := c.CopyIn(2, c.PtrArg(2), 4)
			if !ok {
				return
			}
			alen = le32(b)
		}
		srv, err := f.Sock.Accept()
		if err != nil {
			c.FailErrno(sockErrno(err))
			return
		}
		if srv == nil {
			c.Hang() // empty backlog; no other thread can ever connect
			return
		}
		fd := c.P.AddFD(&kern.FD{Sock: srv, Read: true, Write: true})
		if fd < 0 {
			srv.Close()
			c.FailErrno(api.EMFILE)
			return
		}
		if addr != 0 {
			out := make([]byte, 16)
			out[0] = 2
			out[2], out[3] = byte(srv.RemotePort>>8), byte(srv.RemotePort)
			out[4], out[5], out[6], out[7] = 127, 0, 0, 1
			if alen < 16 {
				out = out[:alen]
			}
			if len(out) > 0 && !c.CopyOut(1, addr, out) {
				c.P.CloseFD(fd)
				return
			}
			if !c.CopyOut(2, c.PtrArg(2), u32b(16)) {
				c.P.CloseFD(fd)
				return
			}
		}
		c.Ret(int64(fd))
	}
	m["connect"] = func(c *api.Call) {
		f := sockArg(c, 0)
		if f == nil {
			return
		}
		port, ok := readSockaddr(c, 1, 2)
		if !ok {
			return
		}
		if err := f.Sock.Connect(port); err != nil {
			c.FailErrno(sockErrno(err))
			return
		}
		c.Ret(0)
	}
	m["send"] = func(c *api.Call) {
		f := sockArg(c, 0)
		if f == nil {
			return
		}
		if flags := c.U32(3); flags&^uint32(0x4) != 0 { // only MSG_DONTROUTE modeled
			c.FailErrno(api.EOPNOTSUPP)
			return
		}
		n := c.U32(2)
		if int32(n) < 0 {
			c.FailErrno(api.EINVAL)
			return
		}
		want := minU32(n, ioClamp)
		var data []byte
		if want > 0 {
			var ok bool
			data, ok = c.CopyIn(1, c.PtrArg(1), want)
			if !ok {
				return
			}
		}
		sent, err := f.Sock.Send(data)
		if errors.Is(err, net.ErrShutdown) {
			c.Signal(api.SIGPIPE) // EPIPE is delivered as the signal
			return
		}
		if err != nil {
			c.FailErrno(sockErrno(err))
			return
		}
		c.Ret(int64(sent))
	}
	m["recv"] = func(c *api.Call) {
		f := sockArg(c, 0)
		if f == nil {
			return
		}
		if flags := c.U32(3); flags != 0 {
			c.FailErrno(api.EOPNOTSUPP)
			return
		}
		n := c.U32(2)
		if int32(n) < 0 {
			c.FailErrno(api.EINVAL)
			return
		}
		if n == 0 {
			c.Ret(0)
			return
		}
		want := minU32(n, ioClamp)
		// Probe before transfer, as the kernel does.
		if !c.K.Probe(c.P.AS, c.PtrArg(1), minU32(want, 4096), true) {
			c.FailErrno(api.EFAULT)
			return
		}
		data, wouldBlock, err := f.Sock.Recv(int(want))
		if err != nil {
			c.FailErrno(sockErrno(err))
			return
		}
		if wouldBlock {
			c.Hang() // blocking recv with nothing queued and a live peer
			return
		}
		if len(data) > 0 && !c.CopyOut(1, c.PtrArg(1), data) {
			return
		}
		c.Ret(int64(len(data)))
	}
	m["shutdown"] = func(c *api.Call) {
		f := sockArg(c, 0)
		if f == nil {
			return
		}
		how := int(int32(c.Int(1)))
		if how < 0 || how > 2 {
			c.FailErrno(api.EINVAL)
			return
		}
		if err := f.Sock.Shutdown(how); err != nil {
			c.FailErrno(sockErrno(err))
			return
		}
		c.Ret(0)
	}
}
