package posixapi

import (
	"ballista/internal/api"
	"ballista/internal/sim/fs"
	"ballista/internal/sim/kern"
	"ballista/internal/sim/mem"
)

// DIR layout (mirrors internal/suite.MakeDIR).
const (
	dirMagic  = 0x4D524944
	dOffMagic = 0
	dOffBuf   = 4
	dOffPos   = 8
	dOffPath  = 12
)

func registerFileDir(m map[string]Impl) {
	m["open"] = func(c *api.Call) {
		path, ok := pathArg(c, 0)
		if !ok {
			return
		}
		flags := c.U32(1)
		acc := flags & 0x3
		if acc == 3 {
			c.FailErrno(api.EINVAL)
			return
		}
		readable := acc == 0 || acc == 2
		writable := acc == 1 || acc == 2
		fsys := c.K.FS
		if flags&0x40 != 0 { // O_CREAT
			if flags&0x80 != 0 { // O_EXCL
				if _, err := fsys.Stat(path); err == nil {
					c.FailErrno(api.EEXIST)
					return
				}
			}
			if _, err := fsys.Create(path, uint16(c.U32(2)>>6&0x7), flags&0x200 != 0); err != nil {
				c.FailErrno(errnoFor(err))
				return
			}
		} else if flags&0x200 != 0 { // O_TRUNC without O_CREAT
			if n, err := fsys.Stat(path); err == nil && !n.IsDir() {
				n.Data = nil
			}
		}
		of, err := fsys.Open(path, readable, writable)
		if err != nil {
			c.FailErrno(errnoFor(err))
			return
		}
		of.Append = flags&0x400 != 0
		fd := c.P.AddFD(&kern.FD{File: of, Read: readable, Write: writable, Flags: int(flags)})
		if fd < 0 {
			// Descriptor table full (kern.fd scarcity): back the open out
			// and report the documented code.
			_ = of.Close()
			c.FailErrno(api.EMFILE)
			return
		}
		c.Ret(int64(fd))
	}
	m["creat"] = func(c *api.Call) {
		path, ok := pathArg(c, 0)
		if !ok {
			return
		}
		if _, err := c.K.FS.Create(path, uint16(c.U32(1)>>6&0x7), true); err != nil {
			c.FailErrno(errnoFor(err))
			return
		}
		of, err := c.K.FS.Open(path, false, true)
		if err != nil {
			c.FailErrno(errnoFor(err))
			return
		}
		fd := c.P.AddFD(&kern.FD{File: of, Write: true})
		if fd < 0 {
			_ = of.Close()
			c.FailErrno(api.EMFILE)
			return
		}
		c.Ret(int64(fd))
	}
	m["unlink"] = pathOp(func(f *fs.FileSystem, p string) error { return f.Remove(p) })
	m["rmdir"] = pathOp(func(f *fs.FileSystem, p string) error { return f.Rmdir(p) })
	m["link"] = pathOp2(func(f *fs.FileSystem, a, b string) error { return f.Link(a, b) })
	m["rename"] = pathOp2(func(f *fs.FileSystem, a, b string) error { return f.Rename(a, b) })
	m["symlink"] = pathOp2(func(f *fs.FileSystem, a, b string) error {
		// Symlinks are modelled as hard links to existing targets.
		return f.Link(a, b)
	})
	m["readlink"] = func(c *api.Call) {
		path, ok := pathArg(c, 0)
		if !ok {
			return
		}
		if _, err := c.K.FS.Stat(path); err != nil {
			c.FailErrno(errnoFor(err))
			return
		}
		// No true symlinks in the model.
		c.FailErrno(api.EINVAL)
	}
	m["mkdir"] = func(c *api.Call) {
		path, ok := pathArg(c, 0)
		if !ok {
			return
		}
		if err := c.K.FS.Mkdir(path, uint16(c.U32(1)>>6&0x7)); err != nil {
			c.FailErrno(errnoFor(err))
			return
		}
		c.Ret(0)
	}
	m["chdir"] = func(c *api.Call) {
		path, ok := pathArg(c, 0)
		if !ok {
			return
		}
		n, err := c.K.FS.Stat(path)
		if err != nil {
			c.FailErrno(errnoFor(err))
			return
		}
		if !n.IsDir() {
			c.FailErrno(api.ENOTDIR)
			return
		}
		c.P.Cwd = path
		c.Ret(0)
	}
	m["fchdir"] = func(c *api.Call) {
		f := fdArg(c, 0)
		if f == nil {
			return
		}
		if f.File == nil || !f.File.Node().IsDir() {
			c.FailErrno(api.ENOTDIR)
			return
		}
		c.Ret(0)
	}
	m["getcwd"] = func(c *api.Call) {
		size := c.U32(1)
		cwd := c.P.Cwd
		if size == 0 {
			c.FailErrnoRet(0, api.EINVAL)
			return
		}
		if int(size) < len(cwd)+1 {
			c.FailErrnoRet(0, api.ERANGE)
			return
		}
		if !c.CopyOut(0, c.PtrArg(0), append([]byte(cwd), 0)) {
			return
		}
		c.Ret(int64(uint32(c.PtrArg(0))))
	}
	m["chmod"] = func(c *api.Call) {
		path, ok := pathArg(c, 0)
		if !ok {
			return
		}
		n, err := c.K.FS.Stat(path)
		if err != nil {
			c.FailErrno(errnoFor(err))
			return
		}
		n.Mode = uint16(c.U32(1) >> 6 & 0x7)
		c.Ret(0)
	}
	m["fchmod"] = func(c *api.Call) {
		f := fdArg(c, 0)
		if f == nil {
			return
		}
		if f.File == nil {
			c.FailErrno(api.EINVAL)
			return
		}
		f.File.Node().Mode = uint16(c.U32(1) >> 6 & 0x7)
		c.Ret(0)
	}
	m["chown"] = chownPath
	m["lchown"] = chownPath
	m["fchown"] = func(c *api.Call) {
		if fdArg(c, 0) == nil {
			return
		}
		if !validID(c.Int(1)) || !validID(c.Int(2)) {
			c.FailErrno(api.EINVAL)
			return
		}
		c.Ret(0)
	}
	m["stat"] = statPath
	m["lstat"] = statPath
	m["fstat"] = func(c *api.Call) {
		f := fdArg(c, 0)
		if f == nil {
			return
		}
		var n *fs.Node
		if f.File != nil {
			n = f.File.Node()
		}
		if !c.CopyOut(1, c.PtrArg(1), statBytes(n)) {
			return
		}
		c.Ret(0)
	}
	m["access"] = func(c *api.Call) {
		path, ok := pathArg(c, 0)
		if !ok {
			return
		}
		amode := c.U32(1)
		if amode&^uint32(0x7) != 0 {
			c.FailErrno(api.EINVAL)
			return
		}
		n, err := c.K.FS.Stat(path)
		if err != nil {
			c.FailErrno(errnoFor(err))
			return
		}
		if amode&0x2 != 0 && n.Mode&fs.ModeWrite == 0 {
			c.FailErrno(api.EACCES)
			return
		}
		if amode&0x1 != 0 && n.Mode&fs.ModeExec == 0 {
			c.FailErrno(api.EACCES)
			return
		}
		c.Ret(0)
	}
	m["utime"] = func(c *api.Call) {
		path, ok := pathArg(c, 0)
		if !ok {
			return
		}
		n, err := c.K.FS.Stat(path)
		if err != nil {
			c.FailErrno(errnoFor(err))
			return
		}
		if p := c.PtrArg(1); p != 0 {
			b, ok := c.CopyIn(1, p, 8)
			if !ok {
				return
			}
			n.AccessTime = uint64(le32(b))
			n.WriteTime = uint64(le32(b[4:]))
		} else {
			c.K.FS.Touch(n)
		}
		c.Ret(0)
	}
	m["utimes"] = func(c *api.Call) {
		path, ok := pathArg(c, 0)
		if !ok {
			return
		}
		n, err := c.K.FS.Stat(path)
		if err != nil {
			c.FailErrno(errnoFor(err))
			return
		}
		if p := c.PtrArg(1); p != 0 {
			b, ok := c.CopyIn(1, p, 16)
			if !ok {
				return
			}
			if int32(le32(b[4:])) >= 1000000 || int32(le32(b[12:])) >= 1000000 {
				c.FailErrno(api.EINVAL)
				return
			}
			n.AccessTime = uint64(le32(b))
			n.WriteTime = uint64(le32(b[8:]))
		} else {
			c.K.FS.Touch(n)
		}
		c.Ret(0)
	}
	m["truncate"] = func(c *api.Call) {
		path, ok := pathArg(c, 0)
		if !ok {
			return
		}
		length := int64(c.Int(1))
		if length < 0 {
			c.FailErrno(api.EINVAL)
			return
		}
		of, err := c.K.FS.Open(path, false, true)
		if err != nil {
			c.FailErrno(errnoFor(err))
			return
		}
		_ = of.Truncate(length)
		_ = of.Close()
		c.Ret(0)
	}
	m["ftruncate"] = func(c *api.Call) {
		f := fdArg(c, 0)
		if f == nil {
			return
		}
		length := int64(c.Int(1))
		if length < 0 || f.File == nil {
			c.FailErrno(api.EINVAL)
			return
		}
		if err := f.File.Truncate(length); err != nil {
			c.FailErrno(errnoFor(err))
			return
		}
		c.Ret(0)
	}
	m["mkfifo"] = func(c *api.Call) {
		path, ok := pathArg(c, 0)
		if !ok {
			return
		}
		if _, err := c.K.FS.Stat(path); err == nil {
			c.FailErrno(api.EEXIST)
			return
		}
		if _, err := c.K.FS.Create(path, uint16(c.U32(1)>>6&0x7), false); err != nil {
			c.FailErrno(errnoFor(err))
			return
		}
		c.Ret(0)
	}
	m["opendir"] = func(c *api.Call) {
		// opendir is glibc code, not a raw system call: the path is read
		// in user mode.
		path, ok := c.UserReadCString(c.PtrArg(0))
		if !ok {
			return
		}
		n, err := c.K.FS.Stat(path)
		if err != nil {
			c.FailErrnoRet(0, errnoFor(err))
			return
		}
		if !n.IsDir() {
			c.FailErrnoRet(0, api.ENOTDIR)
			return
		}
		d, merr := makeDIR(c, path)
		if merr != nil {
			c.FailErrnoRet(0, api.ENOMEM)
			return
		}
		c.Ret(int64(uint32(d)))
	}
	m["readdir"] = readdir
	m["closedir"] = func(c *api.Call) {
		d, ok := loadDIR(c)
		if !ok {
			return
		}
		if c.P.AS.BlockSize(d.addr) > 0 {
			_ = c.P.AS.Free(d.addr)
		}
		c.Ret(0)
	}
	m["rewinddir"] = func(c *api.Call) {
		d, ok := loadDIR(c)
		if !ok {
			return
		}
		_ = c.P.AS.WriteU32(d.addr+dOffPos, 0)
		c.Ret(0)
	}
}

func chownPath(c *api.Call) {
	path, ok := pathArg(c, 0)
	if !ok {
		return
	}
	if _, err := c.K.FS.Stat(path); err != nil {
		c.FailErrno(errnoFor(err))
		return
	}
	if !validID(c.Int(1)) || !validID(c.Int(2)) {
		c.FailErrno(api.EINVAL)
		return
	}
	c.Ret(0)
}

func validID(v int32) bool { return v >= -1 && v <= 65535 }

func statPath(c *api.Call) {
	path, ok := pathArg(c, 0)
	if !ok {
		return
	}
	n, err := c.K.FS.Stat(path)
	if err != nil {
		c.FailErrno(errnoFor(err))
		return
	}
	if !c.CopyOut(1, c.PtrArg(1), statBytes(n)) {
		return
	}
	c.Ret(0)
}

// statBytes renders an 88-byte struct stat.
func statBytes(n *fs.Node) []byte {
	b := make([]byte, 88)
	if n == nil {
		return b
	}
	mode := uint32(n.Mode) << 6
	if n.IsDir() {
		mode |= 0x4000
	} else {
		mode |= 0x8000
	}
	copy(b[16:], u32b(mode))
	copy(b[20:], u32b(uint32(n.Nlink())))
	copy(b[44:], u32b(uint32(n.Size())))
	copy(b[64:], u32b(uint32(n.AccessTime)))
	copy(b[72:], u32b(uint32(n.WriteTime)))
	copy(b[80:], u32b(uint32(n.CreateTime)))
	return b
}

type dirState struct {
	addr mem.Addr
	buf  mem.Addr
	pos  uint32
	path string
}

// loadDIR reads a DIR* the way glibc does: trusting its fields.  The
// struct read and the internal-buffer dereference are user-mode accesses
// that abort on garbage.
func loadDIR(c *api.Call) (dirState, bool) {
	var d dirState
	d.addr = c.PtrArg(0)
	b, ok := c.UserRead(d.addr, 12)
	if !ok {
		return d, false
	}
	if le32(b[dOffMagic:]) != dirMagic {
		// glibc dereferences the internal buffer pointer it finds.
		d.buf = mem.Addr(le32(b[dOffBuf:]))
		if _, ok := c.UserRead(d.buf, 1); !ok {
			return d, false
		}
		c.FailErrnoRet(-1, api.EBADF)
		return d, false
	}
	d.buf = mem.Addr(le32(b[dOffBuf:]))
	d.pos = le32(b[dOffPos:])
	path, ok := c.UserReadCString(d.addr + dOffPath)
	if !ok {
		return d, false
	}
	d.path = path
	return d, true
}

func makeDIR(c *api.Call, path string) (mem.Addr, error) {
	buf, err := c.P.AS.Alloc(4096, mem.ProtRW)
	if err != nil {
		return 0, err
	}
	d, err := c.P.AS.Alloc(128, mem.ProtRW)
	if err != nil {
		return 0, err
	}
	if f := c.P.AS.WriteU32(d+dOffMagic, dirMagic); f != nil {
		return 0, f
	}
	if f := c.P.AS.WriteU32(d+dOffBuf, uint32(buf)); f != nil {
		return 0, f
	}
	if len(path) > 110 {
		path = path[:110]
	}
	if f := c.P.AS.WriteCString(d+dOffPath, path); f != nil {
		return 0, f
	}
	return d, nil
}

func readdir(c *api.Call) {
	d, ok := loadDIR(c)
	if !ok {
		return
	}
	names, err := c.K.FS.List(d.path)
	if err != nil {
		c.FailErrnoRet(0, errnoFor(err))
		return
	}
	if int(d.pos) >= len(names) {
		c.Ret(0) // end of directory: NULL, errno unchanged
		return
	}
	name := names[d.pos]
	// struct dirent rendered into the DIR's internal buffer.
	ent := make([]byte, 12+len(name)+1)
	copy(ent[0:], u32b(d.pos+1)) // d_ino
	copy(ent[4:], u32b(d.pos))   // d_off
	ent[8] = byte(12 + len(name) + 1)
	copy(ent[12:], name)
	if !c.UserWrite(d.buf, ent) {
		return
	}
	_ = c.P.AS.WriteU32(d.addr+dOffPos, d.pos+1)
	c.Ret(int64(uint32(d.buf)))
}

func pathOp(f func(*fs.FileSystem, string) error) Impl {
	return func(c *api.Call) {
		path, ok := pathArg(c, 0)
		if !ok {
			return
		}
		if err := f(c.K.FS, path); err != nil {
			c.FailErrno(errnoFor(err))
			return
		}
		c.Ret(0)
	}
}

func pathOp2(f func(*fs.FileSystem, string, string) error) Impl {
	return func(c *api.Call) {
		a, ok := pathArg(c, 0)
		if !ok {
			return
		}
		b, ok := pathArg(c, 1)
		if !ok {
			return
		}
		if err := f(c.K.FS, a, b); err != nil {
			c.FailErrno(errnoFor(err))
			return
		}
		c.Ret(0)
	}
}
