package posixapi

import (
	"testing"

	"ballista/internal/api"
	"ballista/internal/osprofile"
	"ballista/internal/sim/kern"
	"ballista/internal/sim/mem"
	"ballista/internal/suite"
)

var impls = Impls()

func TestImplCensus(t *testing.T) {
	// The paper's 91 POSIX system calls plus the 8 post-paper BSD
	// socket calls.
	if len(impls) != 99 {
		t.Errorf("POSIX registry has %d calls, want 99", len(impls))
	}
}

func newProc(t *testing.T) (*kern.Kernel, *kern.Process) {
	t.Helper()
	k := osprofile.Get(osprofile.Linux).NewKernel()
	if err := k.FS.MkdirAll("/bl", 0o7); err != nil {
		t.Fatal(err)
	}
	n, err := k.FS.Create("/bl/readable.txt", 0o6, true)
	if err != nil {
		t.Fatal(err)
	}
	n.Data = []byte("posix fixture data")
	_ = k.FS.MkdirAll("/scratch", 0o7)
	return k, k.NewProcess()
}

func run(t *testing.T, k *kern.Kernel, p *kern.Process, name string, args ...api.Arg) *api.Call {
	t.Helper()
	prof := osprofile.Get(osprofile.Linux)
	c := &api.Call{K: k, P: p, Name: name, Args: args, Traits: prof.Traits}
	impl, ok := impls[name]
	if !ok {
		t.Fatalf("no impl %q", name)
	}
	impl(c)
	if !c.Done() {
		c.Ret(0)
	}
	return c
}

func cstr(t *testing.T, p *kern.Process, s string) mem.Addr {
	t.Helper()
	a, err := p.AS.Alloc(uint32(len(s)+1), mem.ProtRW)
	if err != nil {
		t.Fatal(err)
	}
	_ = p.AS.WriteCString(a, s)
	return a
}

func TestOpenReadClose(t *testing.T) {
	k, p := newProc(t)
	path := cstr(t, p, "/bl/readable.txt")
	c := run(t, k, p, "open", api.Ptr(path), api.Int(0), api.Int(0))
	if c.Out.Ret < 0 {
		t.Fatalf("open: %+v", c.Out)
	}
	fd := c.Out.Ret
	buf, _ := p.AS.Alloc(64, mem.ProtRW)
	c = run(t, k, p, "read", api.Int(fd), api.Ptr(buf), api.Int(5))
	if c.Out.Ret != 5 {
		t.Fatalf("read: %+v", c.Out)
	}
	got, _ := p.AS.Read(buf, 5)
	if string(got) != "posix" {
		t.Errorf("read data = %q", got)
	}
	c = run(t, k, p, "close", api.Int(fd))
	if c.Out.Ret != 0 {
		t.Errorf("close: %+v", c.Out)
	}
	c = run(t, k, p, "close", api.Int(fd))
	if c.Out.Err != api.EBADF {
		t.Errorf("double close: %+v", c.Out)
	}
}

// TestEFAULTNotSIGSEGV pins the architectural fact behind Linux's low
// system-call Abort rate: the kernel probes user pointers and returns
// EFAULT instead of letting the access fault.
func TestEFAULTNotSIGSEGV(t *testing.T) {
	k, p := newProc(t)
	path := cstr(t, p, "/bl/readable.txt")
	c := run(t, k, p, "open", api.Ptr(path), api.Int(0), api.Int(0))
	fd := c.Out.Ret

	for _, tt := range []struct {
		name string
		args []api.Arg
	}{
		{"read", []api.Arg{api.Int(fd), api.Ptr(0), api.Int(16)}},
		{"read", []api.Arg{api.Int(fd), api.Ptr(0x7F000000), api.Int(16)}},
		{"write", []api.Arg{api.Int(1), api.Ptr(0), api.Int(16)}},
		{"stat", []api.Arg{api.Ptr(path), api.Ptr(0)}},
		{"pipe", []api.Arg{api.Ptr(0)}},
		{"getcwd", []api.Arg{api.Ptr(0x7F000000), api.Int(64)}},
		{"nanosleep", []api.Arg{api.Ptr(0), api.Ptr(0)}},
	} {
		c := run(t, k, p, tt.name, tt.args...)
		if c.Out.Exception != 0 {
			t.Errorf("%s with bad pointer aborted (%+v); Linux should EFAULT", tt.name, c.Out)
			continue
		}
		if c.Out.Err != api.EFAULT {
			t.Errorf("%s with bad pointer: errno=%d, want EFAULT", tt.name, c.Out.Err)
		}
	}
}

func TestBadFDsReturnEBADF(t *testing.T) {
	k, p := newProc(t)
	for _, fd := range []int64{-1, 99, 0x7FFFFFFF} {
		c := run(t, k, p, "fsync", api.Int(fd))
		if c.Out.Err != api.EBADF {
			t.Errorf("fsync(%d): %+v", fd, c.Out)
		}
	}
}

func TestReadStdinHangs(t *testing.T) {
	k, p := newProc(t)
	buf, _ := p.AS.Alloc(16, mem.ProtRW)
	c := run(t, k, p, "read", api.Int(0), api.Ptr(buf), api.Int(4))
	if !c.Out.Hung {
		t.Errorf("read(stdin) should block: %+v", c.Out)
	}
}

func TestPipeRoundTrip(t *testing.T) {
	k, p := newProc(t)
	fds, _ := p.AS.Alloc(8, mem.ProtRW)
	c := run(t, k, p, "pipe", api.Ptr(fds))
	if c.Out.Ret != 0 {
		t.Fatalf("pipe: %+v", c.Out)
	}
	rfd, _ := p.AS.ReadU32(fds)
	wfd, _ := p.AS.ReadU32(fds + 4)
	data := cstr(t, p, "through the pipe")
	c = run(t, k, p, "write", api.Int(int64(wfd)), api.Ptr(data), api.Int(7))
	if c.Out.Ret != 7 {
		t.Fatalf("write to pipe: %+v", c.Out)
	}
	buf, _ := p.AS.Alloc(16, mem.ProtRW)
	c = run(t, k, p, "read", api.Int(int64(rfd)), api.Ptr(buf), api.Int(7))
	if c.Out.Ret != 7 {
		t.Fatalf("read from pipe: %+v", c.Out)
	}
	got, _ := p.AS.Read(buf, 7)
	if string(got) != "through" {
		t.Errorf("pipe data = %q", got)
	}
}

func TestWriteToClosedPipeSIGPIPE(t *testing.T) {
	k, p := newProc(t)
	fds, _ := p.AS.Alloc(8, mem.ProtRW)
	_ = run(t, k, p, "pipe", api.Ptr(fds))
	rfd, _ := p.AS.ReadU32(fds)
	wfd, _ := p.AS.ReadU32(fds + 4)
	_ = run(t, k, p, "close", api.Int(int64(rfd)))
	data := cstr(t, p, "x")
	c := run(t, k, p, "write", api.Int(int64(wfd)), api.Ptr(data), api.Int(1))
	if c.Out.Exception != api.SIGPIPE {
		t.Errorf("write to reader-less pipe: %+v", c.Out)
	}
}

func TestStatFillsBuffer(t *testing.T) {
	k, p := newProc(t)
	path := cstr(t, p, "/bl/readable.txt")
	st, _ := p.AS.Alloc(88, mem.ProtRW)
	c := run(t, k, p, "stat", api.Ptr(path), api.Ptr(st))
	if c.Out.Ret != 0 {
		t.Fatalf("stat: %+v", c.Out)
	}
	size, _ := p.AS.ReadU32(st + 44)
	if size != 18 {
		t.Errorf("st_size = %d, want 18", size)
	}
	modeWord, _ := p.AS.ReadU32(st + 16)
	if modeWord&0x8000 == 0 {
		t.Error("S_IFREG not set")
	}
}

func TestDirectoryOps(t *testing.T) {
	k, p := newProc(t)
	path := cstr(t, p, "/scratch/newdir")
	c := run(t, k, p, "mkdir", api.Ptr(path), api.Int(0o755))
	if c.Out.Ret != 0 {
		t.Fatalf("mkdir: %+v", c.Out)
	}
	c = run(t, k, p, "mkdir", api.Ptr(path), api.Int(0o755))
	if c.Out.Err != api.EEXIST {
		t.Errorf("mkdir twice: %+v", c.Out)
	}
	c = run(t, k, p, "chdir", api.Ptr(path))
	if c.Out.Ret != 0 || p.Cwd != "/scratch/newdir" {
		t.Errorf("chdir: %+v cwd=%q", c.Out, p.Cwd)
	}
	c = run(t, k, p, "rmdir", api.Ptr(path))
	if c.Out.Ret != 0 {
		t.Errorf("rmdir: %+v", c.Out)
	}
}

func TestOpendirReaddir(t *testing.T) {
	k, p := newProc(t)
	_ = k.FS.MkdirAll("/bl/dir", 0o7)
	for _, n := range []string{"x.txt", "y.txt"} {
		if _, err := k.FS.Create("/bl/dir/"+n, 0o6, false); err != nil {
			t.Fatal(err)
		}
	}
	path := cstr(t, p, "/bl/dir")
	c := run(t, k, p, "opendir", api.Ptr(path))
	if c.Out.Ret == 0 {
		t.Fatalf("opendir: %+v", c.Out)
	}
	dir := mem.Addr(uint32(c.Out.Ret))
	c = run(t, k, p, "readdir", api.Ptr(dir))
	if c.Out.Ret == 0 {
		t.Fatalf("readdir: %+v", c.Out)
	}
	ent := mem.Addr(uint32(c.Out.Ret))
	name, _ := p.AS.CString(ent + 12)
	if name != "x.txt" {
		t.Errorf("first dirent = %q", name)
	}
	_ = run(t, k, p, "readdir", api.Ptr(dir))
	c = run(t, k, p, "readdir", api.Ptr(dir))
	if c.Out.Ret != 0 {
		t.Errorf("exhausted readdir = %d", c.Out.Ret)
	}
	c = run(t, k, p, "rewinddir", api.Ptr(dir))
	if c.Out.Ret != 0 {
		t.Fatalf("rewinddir: %+v", c.Out)
	}
	c = run(t, k, p, "readdir", api.Ptr(dir))
	if c.Out.Ret == 0 {
		t.Error("readdir after rewinddir returned NULL")
	}
	c = run(t, k, p, "closedir", api.Ptr(dir))
	if c.Out.Ret != 0 {
		t.Errorf("closedir: %+v", c.Out)
	}
}

// TestReaddirGarbageAborts: glibc's readdir is user-mode code — the
// Ballista DIR* garbage value dereferences and faults, unlike the
// probed system calls.
func TestReaddirGarbageAborts(t *testing.T) {
	k, p := newProc(t)
	c := run(t, k, p, "readdir", api.Ptr(0))
	if c.Out.Exception != api.SIGSEGV {
		t.Errorf("readdir(NULL): %+v", c.Out)
	}
	g, err := suite.MakeDIR(p, "/bl/dir")
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the magic and buffer pointer: glibc chases the garbage.
	_ = p.AS.WriteU32(g, 0x41414141)
	_ = p.AS.WriteU32(g+4, 0x42424242)
	c = run(t, k, p, "readdir", api.Ptr(g))
	if c.Out.Exception != api.SIGSEGV {
		t.Errorf("readdir(garbage DIR): %+v", c.Out)
	}
}

func TestKillSelfSignals(t *testing.T) {
	k, p := newProc(t)
	c := run(t, k, p, "kill", api.Int(int64(p.PID)), api.Int(0))
	if c.Out.Ret != 0 {
		t.Errorf("kill(self, 0) probe: %+v", c.Out)
	}
	c = run(t, k, p, "kill", api.Int(int64(p.PID)), api.Int(9))
	if c.Out.Exception != 9 || !c.Out.IsSignal {
		t.Errorf("kill(self, SIGKILL): %+v", c.Out)
	}
	c = run(t, k, p, "kill", api.Int(int64(p.PID)), api.Int(64))
	if c.Out.Err != api.EINVAL {
		t.Errorf("kill(self, 64): %+v", c.Out)
	}
	c = run(t, k, p, "kill", api.Int(424242), api.Int(15))
	if c.Out.Err != api.ESRCH {
		t.Errorf("kill(nonexistent): %+v", c.Out)
	}
}

func TestWaitWithNoChildren(t *testing.T) {
	k, p := newProc(t)
	st, _ := p.AS.Alloc(4, mem.ProtRW)
	c := run(t, k, p, "waitpid", api.Int(-1), api.Ptr(st), api.Int(0))
	if c.Out.Err != api.ECHILD {
		t.Errorf("waitpid: %+v", c.Out)
	}
}

func TestForkReturnsChildPID(t *testing.T) {
	k, p := newProc(t)
	c := run(t, k, p, "fork")
	if c.Out.Ret <= 0 {
		t.Errorf("fork: %+v", c.Out)
	}
}

func TestExecValidation(t *testing.T) {
	k, p := newProc(t)
	_ = k.FS.MkdirAll("/bin", 0o7)
	if _, err := k.FS.Create("/bin/true", 0o7, false); err != nil {
		t.Fatal(err)
	}
	path := cstr(t, p, "/bin/true")
	// NULL argv is EFAULT.
	c := run(t, k, p, "execv", api.Ptr(path), api.Ptr(0))
	if c.Out.Err != api.EFAULT {
		t.Errorf("execv(NULL argv): %+v", c.Out)
	}
	// Valid argv: the exec "succeeds".
	s0 := cstr(t, p, "true")
	argv, _ := p.AS.Alloc(8, mem.ProtRW)
	_ = p.AS.WriteU32(argv, uint32(s0))
	_ = p.AS.WriteU32(argv+4, 0)
	c = run(t, k, p, "execv", api.Ptr(path), api.Ptr(argv))
	if c.Out.Ret != 0 {
		t.Errorf("execv valid: %+v", c.Out)
	}
	// Non-executable target.
	noexec := cstr(t, p, "/bl/readable.txt")
	c = run(t, k, p, "execv", api.Ptr(noexec), api.Ptr(argv))
	if c.Out.Err != api.EACCES {
		t.Errorf("execv non-executable: %+v", c.Out)
	}
}

func TestMmapMunmap(t *testing.T) {
	k, p := newProc(t)
	c := run(t, k, p, "mmap", api.Ptr(0), api.Int(8192), api.Int(3), api.Int(0x22), api.Int(-1), api.Int(0))
	if c.Out.ErrReported {
		t.Fatalf("mmap: %+v", c.Out)
	}
	base := mem.Addr(uint32(c.Out.Ret))
	if f := p.AS.Write(base, []byte("mapped")); f != nil {
		t.Errorf("mapped memory not writable: %v", f)
	}
	c = run(t, k, p, "munmap", api.Ptr(base), api.Int(8192))
	if c.Out.Ret != 0 {
		t.Errorf("munmap: %+v", c.Out)
	}
	// Invalid arguments.
	c = run(t, k, p, "mmap", api.Ptr(0), api.Int(0), api.Int(3), api.Int(0x22), api.Int(-1), api.Int(0))
	if c.Out.Err != api.EINVAL {
		t.Errorf("mmap(len=0): %+v", c.Out)
	}
	c = run(t, k, p, "munmap", api.Ptr(13), api.Int(4096))
	if c.Out.Err != api.EINVAL {
		t.Errorf("munmap(misaligned): %+v", c.Out)
	}
}

func TestUnprivilegedIdentity(t *testing.T) {
	k, p := newProc(t)
	c := run(t, k, p, "getuid")
	if c.Out.Ret != 1000 {
		t.Errorf("getuid = %d", c.Out.Ret)
	}
	c = run(t, k, p, "setuid", api.Int(0))
	if c.Out.Err != api.EPERM {
		t.Errorf("setuid(0) as non-root: %+v", c.Out)
	}
	c = run(t, k, p, "setuid", api.Int(1000))
	if c.Out.Ret != 0 {
		t.Errorf("setuid(self): %+v", c.Out)
	}
}

func TestSysconfPathconf(t *testing.T) {
	k, p := newProc(t)
	c := run(t, k, p, "sysconf", api.Int(30))
	if c.Out.Ret != 4096 {
		t.Errorf("sysconf(_SC_PAGESIZE) = %d", c.Out.Ret)
	}
	c = run(t, k, p, "sysconf", api.Int(-1))
	if c.Out.Err != api.EINVAL {
		t.Errorf("sysconf(-1): %+v", c.Out)
	}
	path := cstr(t, p, "/bl/readable.txt")
	c = run(t, k, p, "pathconf", api.Ptr(path), api.Int(3))
	if c.Out.Ret != 255 {
		t.Errorf("pathconf(NAME_MAX) = %d", c.Out.Ret)
	}
}

func TestDupFamily(t *testing.T) {
	k, p := newProc(t)
	path := cstr(t, p, "/bl/readable.txt")
	c := run(t, k, p, "open", api.Ptr(path), api.Int(0), api.Int(0))
	fd := c.Out.Ret
	c = run(t, k, p, "dup", api.Int(fd))
	if c.Out.Ret <= fd {
		t.Fatalf("dup: %+v", c.Out)
	}
	c = run(t, k, p, "dup2", api.Int(fd), api.Int(17))
	if c.Out.Ret != 17 {
		t.Fatalf("dup2: %+v", c.Out)
	}
	if p.FD(17) == nil {
		t.Error("dup2 target not installed")
	}
	c = run(t, k, p, "dup2", api.Int(fd), api.Int(fd))
	if c.Out.Ret != fd {
		t.Errorf("dup2 same fd: %+v", c.Out)
	}
	c = run(t, k, p, "dup", api.Int(-1))
	if c.Out.Err != api.EBADF {
		t.Errorf("dup(-1): %+v", c.Out)
	}
}

func TestLseek(t *testing.T) {
	k, p := newProc(t)
	path := cstr(t, p, "/bl/readable.txt")
	c := run(t, k, p, "open", api.Ptr(path), api.Int(0), api.Int(0))
	fd := c.Out.Ret
	c = run(t, k, p, "lseek", api.Int(fd), api.Int(6), api.Int(0))
	if c.Out.Ret != 6 {
		t.Errorf("lseek: %+v", c.Out)
	}
	c = run(t, k, p, "lseek", api.Int(fd), api.Int(0), api.Int(99))
	if c.Out.Err != api.EINVAL {
		t.Errorf("lseek bad whence: %+v", c.Out)
	}
	c = run(t, k, p, "lseek", api.Int(0), api.Int(0), api.Int(0))
	if c.Out.Err != api.ESPIPE {
		t.Errorf("lseek on pipe: %+v", c.Out)
	}
}
