package posixapi

import "ballista/internal/api"

// Identity model: the test task runs as an unprivileged user.
const (
	curUID = 1000
	curGID = 1000
)

func registerEnv(m map[string]Impl) {
	m["getpid"] = func(c *api.Call) { c.Ret(int64(c.P.PID)) }
	m["getppid"] = func(c *api.Call) { c.Ret(1) }
	m["getuid"] = func(c *api.Call) { c.Ret(curUID) }
	m["geteuid"] = func(c *api.Call) { c.Ret(curUID) }
	m["getgid"] = func(c *api.Call) { c.Ret(curGID) }
	m["getegid"] = func(c *api.Call) { c.Ret(curGID) }
	m["setuid"] = setID(curUID)
	m["seteuid"] = setID(curUID)
	m["setgid"] = setID(curGID)
	m["setegid"] = setID(curGID)
	m["getgroups"] = func(c *api.Call) {
		n := int(c.Int(0))
		if n < 0 {
			c.FailErrno(api.EINVAL)
			return
		}
		if n == 0 {
			c.Ret(1) // number of supplementary groups
			return
		}
		if !c.CopyOut(1, c.PtrArg(1), u32b(curGID)) {
			return
		}
		c.Ret(1)
	}
	m["setgroups"] = func(c *api.Call) {
		n := c.U32(0)
		if n > 65536 {
			c.FailErrno(api.EINVAL)
			return
		}
		if n > 0 {
			if _, ok := c.CopyIn(1, c.PtrArg(1), minU32(4*n, 4096)); !ok {
				return
			}
		}
		c.FailErrno(api.EPERM) // not root
	}
	m["getpgrp"] = func(c *api.Call) { c.Ret(int64(c.P.PID)) }
	m["setpgid"] = func(c *api.Call) {
		pid, pgid := int(c.Int(0)), int(c.Int(1))
		if pgid < 0 {
			c.FailErrno(api.EINVAL)
			return
		}
		if pid != 0 && pid != c.P.PID {
			c.FailErrno(api.ESRCH)
			return
		}
		c.Ret(0)
	}
	m["setsid"] = func(c *api.Call) {
		// The caller is already a process-group leader in the model.
		c.FailErrno(api.EPERM)
	}
	m["getsid"] = func(c *api.Call) {
		pid := int(c.Int(0))
		if pid != 0 && pid != c.P.PID {
			c.FailErrno(api.ESRCH)
			return
		}
		c.Ret(int64(c.P.PID))
	}
	m["getrlimit"] = func(c *api.Call) {
		if !validRlimit(int(c.Int(0))) {
			c.FailErrno(api.EINVAL)
			return
		}
		out := make([]byte, 16)
		copy(out, u32b(1<<20))
		copy(out[8:], u32b(1<<22))
		if !c.CopyOut(1, c.PtrArg(1), out) {
			return
		}
		c.Ret(0)
	}
	m["setrlimit"] = func(c *api.Call) {
		if !validRlimit(int(c.Int(0))) {
			c.FailErrno(api.EINVAL)
			return
		}
		b, ok := c.CopyIn(1, c.PtrArg(1), 16)
		if !ok {
			return
		}
		cur, maxv := le32(b), le32(b[8:])
		if cur > maxv {
			c.FailErrno(api.EINVAL)
			return
		}
		c.Ret(0)
	}
	m["times"] = func(c *api.Call) {
		out := make([]byte, 16)
		copy(out, u32b(uint32(c.K.Ticks())))
		if !c.CopyOut(0, c.PtrArg(0), out) {
			return
		}
		c.Ret(int64(uint32(c.K.Ticks())))
	}
	m["uname"] = func(c *api.Call) {
		out := make([]byte, 320)
		fill := func(off int, s string) { copy(out[off:], s) }
		fill(0, "Linux")
		fill(65, "ballista")
		fill(130, "2.2.5")
		fill(195, "#1 SMP")
		fill(260, "i686")
		if !c.CopyOut(0, c.PtrArg(0), out) {
			return
		}
		c.Ret(0)
	}
	m["sysconf"] = func(c *api.Call) {
		switch c.Int(0) {
		case 0: // _SC_ARG_MAX
			c.Ret(131072)
		case 1: // _SC_CHILD_MAX
			c.Ret(999)
		case 2: // _SC_CLK_TCK
			c.Ret(100)
		case 4: // _SC_OPEN_MAX
			c.Ret(1024)
		case 30: // _SC_PAGESIZE
			c.Ret(4096)
		default:
			if c.Int(0) >= 0 && c.Int(0) < 200 {
				c.Ret(-1) // unsupported name: -1 with errno unchanged
				return
			}
			c.FailErrno(api.EINVAL)
		}
	}
	m["pathconf"] = func(c *api.Call) {
		path, ok := pathArg(c, 0)
		if !ok {
			return
		}
		if _, err := c.K.FS.Stat(path); err != nil {
			c.FailErrno(errnoFor(err))
			return
		}
		pathconfName(c, int(c.Int(1)))
	}
	m["fpathconf"] = func(c *api.Call) {
		if fdArg(c, 0) == nil {
			return
		}
		pathconfName(c, int(c.Int(1)))
	}
}

func setID(cur int64) Impl {
	return func(c *api.Call) {
		v := int(c.Int(0))
		if v < 0 {
			c.FailErrno(api.EINVAL)
			return
		}
		if int64(v) != cur {
			c.FailErrno(api.EPERM) // unprivileged
			return
		}
		c.Ret(0)
	}
}

func validRlimit(r int) bool { return r >= 0 && r <= 10 }

func pathconfName(c *api.Call, name int) {
	switch name {
	case 0: // _PC_LINK_MAX
		c.Ret(127)
	case 3: // _PC_NAME_MAX
		c.Ret(255)
	case 4: // _PC_PATH_MAX
		c.Ret(4096)
	default:
		if name >= 0 && name < 20 {
			c.Ret(-1)
			return
		}
		c.FailErrno(api.EINVAL)
	}
}
