// Package version stamps the running code so campaign identities and
// content-addressed store keys are sound across binary versions: a
// cached result is only reusable by the code that would reproduce it.
//
// Resolution order:
//  1. an explicit -ldflags "-X ballista/internal/version.override=..."
//  2. the VCS revision embedded by the Go toolchain (debug.ReadBuildInfo)
//  3. a hash of the MuT catalog content — test binaries and non-VCS
//     builds still get a stamp that moves when the tested surface moves.
package version

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"runtime/debug"
	"sync"

	"ballista/internal/catalog"
)

// override is set at link time; it wins over everything.
var override string

var (
	once  sync.Once
	stamp string
)

// Stamp returns the code-version stamp, computed once per process.
func Stamp() string {
	once.Do(func() { stamp = resolve() })
	return stamp
}

func resolve() string {
	if override != "" {
		return override
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev, dirty string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "-dirty"
				}
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			return rev + dirty
		}
	}
	return "catalog-" + catalogHash()
}

// catalogHash fingerprints the full MuT catalog: every surface's MuT
// names, groups and parameter types.  Any catalog change — which would
// change case generation — moves the stamp.
func catalogHash() string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	for _, a := range []catalog.API{catalog.CLib, catalog.Win32, catalog.POSIX} {
		for _, m := range catalog.ForAPI(a) {
			_ = enc.Encode(m)
		}
	}
	return hex.EncodeToString(h.Sum(nil))[:12]
}
