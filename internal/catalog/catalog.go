// Package catalog defines the Modules under Test (MuTs): the 143 Win32
// system calls, 94 C library functions and 91 POSIX system calls the
// paper selected, each with its functional group and the Ballista data
// type of every parameter.
//
// The counts reproduce the paper's Table 1 exactly: desktop Windows tests
// 143 + 94 = 237 MuTs (Windows 95 lacks 10 of the system calls, testing
// 227); Windows CE supports 71 system calls and 82 C functions (108 when
// the 26 UNICODE/ASCII pairs are counted separately); Linux tests 91
// system calls plus the same 94 C functions.
package catalog

import "fmt"

// API identifies which surface a MuT belongs to.
type API int

// API surfaces.
const (
	CLib API = iota
	Win32
	POSIX
)

// String names the surface.
func (a API) String() string {
	switch a {
	case CLib:
		return "C library"
	case Win32:
		return "Win32"
	case POSIX:
		return "POSIX"
	default:
		return fmt.Sprintf("API(%d)", int(a))
	}
}

// Group is one of the paper's twelve functional groupings used for
// normalized cross-API comparison (Table 2 / Figure 1).
type Group int

// The twelve functional groups, in the paper's Figure 1 order: five
// system-call groups followed by seven C library groups.
const (
	GrpMemoryManagement Group = iota
	GrpFileDirAccess
	GrpIOPrimitives
	GrpProcessPrimitives
	GrpProcessEnvironment
	GrpCChar
	GrpCFileIO
	GrpCMemory
	GrpCStreamIO
	GrpCMath
	GrpCTime
	GrpCString

	// GrpSockets extends the catalog beyond the paper's twelve groups:
	// the Winsock surface on Windows profiles and the BSD sockets surface
	// on Linux, both backed by the sim/net substrate.  It is declared
	// after the paper groups so their values (and every wire format keyed
	// on them) are unchanged.
	GrpSockets
)

// Groups lists all groups in reporting order: the paper's system-call
// groups, then sockets (the post-paper system-call extension), then the
// C library groups.
func Groups() []Group {
	return []Group{
		GrpMemoryManagement, GrpFileDirAccess, GrpIOPrimitives,
		GrpProcessPrimitives, GrpProcessEnvironment, GrpSockets,
		GrpCChar, GrpCFileIO, GrpCMemory, GrpCStreamIO,
		GrpCMath, GrpCTime, GrpCString,
	}
}

// String returns the paper's group label.
func (g Group) String() string {
	switch g {
	case GrpMemoryManagement:
		return "Memory Management"
	case GrpFileDirAccess:
		return "File/Directory Access"
	case GrpIOPrimitives:
		return "I/O Primitives"
	case GrpProcessPrimitives:
		return "Process Primitives"
	case GrpProcessEnvironment:
		return "Process Environment"
	case GrpCChar:
		return "C char"
	case GrpCFileIO:
		return "C file I/O management"
	case GrpCMemory:
		return "C memory management"
	case GrpCStreamIO:
		return "C stream I/O"
	case GrpCMath:
		return "C math"
	case GrpCTime:
		return "C time"
	case GrpCString:
		return "C string"
	case GrpSockets:
		return "Sockets"
	default:
		return fmt.Sprintf("Group(%d)", int(g))
	}
}

// SystemCallGroup reports whether the group holds system calls (vs C
// library functions).
func (g Group) SystemCallGroup() bool {
	switch g {
	case GrpMemoryManagement, GrpFileDirAccess, GrpIOPrimitives,
		GrpProcessPrimitives, GrpProcessEnvironment, GrpSockets:
		return true
	default:
		return false
	}
}

// MuT is one Module under Test.
type MuT struct {
	Name  string
	API   API
	Group Group
	// Params names the Ballista data type of each parameter; the suite
	// package resolves names to test-value pools.
	Params []string
	// HasWide: the C function has a UNICODE sibling on Windows CE.
	HasWide bool
}

func mut(api API, g Group, name string, params ...string) MuT {
	return MuT{Name: name, API: api, Group: g, Params: params}
}

// ByName returns the MuT definition for a name on a surface.
func ByName(a API, name string) (MuT, bool) {
	for _, m := range ForAPI(a) {
		if m.Name == name {
			return m, true
		}
	}
	return MuT{}, false
}

// ForAPI returns the full MuT list for one surface.
func ForAPI(a API) []MuT {
	switch a {
	case CLib:
		return CLibMuTs()
	case Win32:
		return Win32MuTs()
	case POSIX:
		return POSIXMuTs()
	default:
		return nil
	}
}
