package catalog

// The sockets group extends the catalog beyond the paper's Table 1: a
// Winsock 1.1 surface for the Windows profiles and the matching BSD
// sockets surface for Linux, both implemented over the sim/net
// substrate.  The eight shared names (socket bind listen accept connect
// send recv shutdown) are deliberately identical across the two
// surfaces so the cross-OS differential voter and the explore chain
// fuzzer can intersect them; closesocket and WSAGetLastError exist only
// in the Winsock model (POSIX closes sockets with close(2) and reports
// through errno).
//
// Because the explore fuzzer replays one case-index vector across every
// OS in the differential set, the shared names must be
// ordinal-compatible: the same parameter count with the same pool size
// at every position (SOCKET and SOCKFD are distinct pools — handle
// table vs descriptor table — but are kept the same size with parallel
// value ordinals; suite.TestSocketPoolOrdinalCompat pins this).

// win32SocketMuTs returns the Winsock system calls.
func win32SocketMuTs() []MuT {
	g := GrpSockets
	return []MuT{
		mut(Win32, g, "socket", "AF", "SOCKTYPE", "PROTO"),
		mut(Win32, g, "bind", "SOCKET", "SOCKADDR", "NAMELEN"),
		mut(Win32, g, "listen", "SOCKET", "BACKLOG"),
		mut(Win32, g, "accept", "SOCKET", "SOCKADDR_OUT", "NAMELENPTR"),
		mut(Win32, g, "connect", "SOCKET", "SOCKADDR", "NAMELEN"),
		mut(Win32, g, "send", "SOCKET", "CBUF", "SIZE_T", "SENDFLAGS"),
		mut(Win32, g, "recv", "SOCKET", "BUF", "SIZE_T", "SENDFLAGS"),
		mut(Win32, g, "shutdown", "SOCKET", "HOW"),
		mut(Win32, g, "closesocket", "SOCKET"),
		mut(Win32, g, "WSAGetLastError"),
	}
}

// posixSocketMuTs returns the BSD socket system calls.
func posixSocketMuTs() []MuT {
	g := GrpSockets
	return []MuT{
		mut(POSIX, g, "socket", "AF", "SOCKTYPE", "PROTO"),
		mut(POSIX, g, "bind", "SOCKFD", "SOCKADDR", "NAMELEN"),
		mut(POSIX, g, "listen", "SOCKFD", "BACKLOG"),
		mut(POSIX, g, "accept", "SOCKFD", "SOCKADDR_OUT", "NAMELENPTR"),
		mut(POSIX, g, "connect", "SOCKFD", "SOCKADDR", "NAMELEN"),
		mut(POSIX, g, "send", "SOCKFD", "CBUF", "SIZE_T", "SENDFLAGS"),
		mut(POSIX, g, "recv", "SOCKFD", "BUF", "SIZE_T", "SENDFLAGS"),
		mut(POSIX, g, "shutdown", "SOCKFD", "HOW"),
	}
}
