package catalog

// POSIXMuTs returns the POSIX system calls tested on Linux: the paper's
// 91 calls grouped into the same five system-call categories for the
// normalized comparison, plus the BSD sockets group added after the
// paper reproduction was complete.  The I/O Primitives group is the
// paper's own published list.
func POSIXMuTs() []MuT {
	var m []MuT
	m = append(m, posixIOPrimitives()...)
	m = append(m, posixMemoryManagement()...)
	m = append(m, posixFileDirAccess()...)
	m = append(m, posixProcessPrimitives()...)
	m = append(m, posixProcessEnvironment()...)
	m = append(m, posixSocketMuTs()...)
	return m
}

// posixIOPrimitives is the paper's exact I/O Primitives list (10 calls).
func posixIOPrimitives() []MuT {
	g := GrpIOPrimitives
	return []MuT{
		mut(POSIX, g, "close", "FD"),
		mut(POSIX, g, "dup", "FD"),
		mut(POSIX, g, "dup2", "FD", "FD"),
		mut(POSIX, g, "fcntl", "FD", "FCNTL_CMD", "FCNTL_ARG"),
		mut(POSIX, g, "fdatasync", "FD"),
		mut(POSIX, g, "fsync", "FD"),
		mut(POSIX, g, "lseek", "FD", "OFF_T", "WHENCE"),
		mut(POSIX, g, "pipe", "PIPEFDS"),
		mut(POSIX, g, "read", "FD", "BUF", "SIZE_T"),
		mut(POSIX, g, "write", "FD", "CBUF", "SIZE_T"),
	}
}

func posixMemoryManagement() []MuT { // 7 calls
	g := GrpMemoryManagement
	return []MuT{
		mut(POSIX, g, "mmap", "MAPADDR", "SIZE_T", "MPROT", "MFLAGS", "FD", "OFF_T"),
		mut(POSIX, g, "munmap", "MAPADDR", "SIZE_T"),
		mut(POSIX, g, "mprotect", "MAPADDR", "SIZE_T", "MPROT"),
		mut(POSIX, g, "msync", "MAPADDR", "SIZE_T", "MSFLAGS"),
		mut(POSIX, g, "mlock", "MAPADDR", "SIZE_T"),
		mut(POSIX, g, "munlock", "MAPADDR", "SIZE_T"),
		mut(POSIX, g, "brk", "MAPADDR"),
	}
}

func posixFileDirAccess() []MuT { // 30 calls
	g := GrpFileDirAccess
	return []MuT{
		mut(POSIX, g, "open", "PATH", "OPEN_FLAGS", "MODE_T"),
		mut(POSIX, g, "creat", "PATH", "MODE_T"),
		mut(POSIX, g, "unlink", "PATH"),
		mut(POSIX, g, "link", "PATH", "PATH"),
		mut(POSIX, g, "symlink", "PATH", "PATH"),
		mut(POSIX, g, "readlink", "PATH", "STRBUF", "SIZE_T"),
		mut(POSIX, g, "rename", "PATH", "PATH"),
		mut(POSIX, g, "mkdir", "PATH", "MODE_T"),
		mut(POSIX, g, "rmdir", "PATH"),
		mut(POSIX, g, "chdir", "PATH"),
		mut(POSIX, g, "fchdir", "FD"),
		mut(POSIX, g, "getcwd", "STRBUF", "SIZE_T"),
		mut(POSIX, g, "chmod", "PATH", "MODE_T"),
		mut(POSIX, g, "fchmod", "FD", "MODE_T"),
		mut(POSIX, g, "chown", "PATH", "UID", "GID"),
		mut(POSIX, g, "fchown", "FD", "UID", "GID"),
		mut(POSIX, g, "lchown", "PATH", "UID", "GID"),
		mut(POSIX, g, "stat", "PATH", "STATBUF"),
		mut(POSIX, g, "lstat", "PATH", "STATBUF"),
		mut(POSIX, g, "fstat", "FD", "STATBUF"),
		mut(POSIX, g, "access", "PATH", "AMODE"),
		mut(POSIX, g, "utime", "PATH", "UTIMBUF"),
		mut(POSIX, g, "utimes", "PATH", "TIMEVALARR"),
		mut(POSIX, g, "truncate", "PATH", "OFF_T"),
		mut(POSIX, g, "ftruncate", "FD", "OFF_T"),
		mut(POSIX, g, "opendir", "PATH"),
		mut(POSIX, g, "readdir", "DIRP"),
		mut(POSIX, g, "closedir", "DIRP"),
		mut(POSIX, g, "rewinddir", "DIRP"),
		mut(POSIX, g, "mkfifo", "PATH", "MODE_T"),
	}
}

func posixProcessPrimitives() []MuT { // 21 calls
	g := GrpProcessPrimitives
	return []MuT{
		mut(POSIX, g, "fork"),
		mut(POSIX, g, "vfork"),
		mut(POSIX, g, "execv", "PATH", "ARGV"),
		mut(POSIX, g, "execve", "PATH", "ARGV", "ENVP"),
		mut(POSIX, g, "execvp", "PATH", "ARGV"),
		mut(POSIX, g, "waitpid", "PID", "STATUSPTR", "WAITOPTS"),
		mut(POSIX, g, "wait", "STATUSPTR"),
		mut(POSIX, g, "wait4", "PID", "STATUSPTR", "WAITOPTS", "RUSAGEPTR"),
		mut(POSIX, g, "kill", "PID", "SIG"),
		mut(POSIX, g, "killpg", "PID", "SIG"),
		mut(POSIX, g, "raise", "SIG"),
		mut(POSIX, g, "sigaction", "SIG", "SIGACTPTR", "SIGACTPTR"),
		mut(POSIX, g, "sigprocmask", "SIGHOW", "SIGSETPTR", "SIGSETPTR"),
		mut(POSIX, g, "sigpending", "SIGSETPTR"),
		mut(POSIX, g, "alarm", "SECONDS"),
		mut(POSIX, g, "sleep", "SECONDS"),
		mut(POSIX, g, "nanosleep", "TIMESPECPTR", "TIMESPECPTR"),
		mut(POSIX, g, "sched_yield"),
		mut(POSIX, g, "getitimer", "ITIMER_WHICH", "ITIMERPTR"),
		mut(POSIX, g, "setitimer", "ITIMER_WHICH", "ITIMERPTR", "ITIMERPTR"),
		mut(POSIX, g, "ptrace", "PTRACE_REQ", "PID", "MAPADDR", "MAPADDR"),
	}
}

func posixProcessEnvironment() []MuT { // 23 calls
	g := GrpProcessEnvironment
	return []MuT{
		mut(POSIX, g, "getpid"),
		mut(POSIX, g, "getppid"),
		mut(POSIX, g, "getuid"),
		mut(POSIX, g, "geteuid"),
		mut(POSIX, g, "getgid"),
		mut(POSIX, g, "getegid"),
		mut(POSIX, g, "setuid", "UID"),
		mut(POSIX, g, "setgid", "GID"),
		mut(POSIX, g, "seteuid", "UID"),
		mut(POSIX, g, "setegid", "GID"),
		mut(POSIX, g, "getgroups", "COUNT32S", "GIDARR"),
		mut(POSIX, g, "setgroups", "SIZE_T", "GIDARR"),
		mut(POSIX, g, "getpgrp"),
		mut(POSIX, g, "setpgid", "PID", "PID"),
		mut(POSIX, g, "setsid"),
		mut(POSIX, g, "getsid", "PID"),
		mut(POSIX, g, "getrlimit", "RLIMIT_RES", "RLIMITPTR"),
		mut(POSIX, g, "setrlimit", "RLIMIT_RES", "RLIMITPTR"),
		mut(POSIX, g, "times", "TMSPTR"),
		mut(POSIX, g, "uname", "UTSNAMEPTR"),
		mut(POSIX, g, "sysconf", "SYSCONF_NAME"),
		mut(POSIX, g, "pathconf", "PATH", "PATHCONF_NAME"),
		mut(POSIX, g, "fpathconf", "FD", "PATHCONF_NAME"),
	}
}
