package catalog

// CLibMuTs returns the 94 C library functions tested with identical test
// cases on both the Win32 and POSIX sides (paper §1).  HasWide marks the
// 26 functions with both ASCII and UNICODE implementations on Windows CE.
func CLibMuTs() []MuT {
	var m []MuT
	m = append(m, clibChar()...)
	m = append(m, clibString()...)
	m = append(m, clibMemory()...)
	m = append(m, clibMath()...)
	m = append(m, clibTime()...)
	m = append(m, clibFileIO()...)
	m = append(m, clibStreamIO()...)
	return m
}

func wide(m MuT) MuT {
	m.HasWide = true
	return m
}

func clibChar() []MuT { // 13 functions
	g := GrpCChar
	return []MuT{
		mut(CLib, g, "isalnum", "CINT"),
		mut(CLib, g, "isalpha", "CINT"),
		mut(CLib, g, "iscntrl", "CINT"),
		mut(CLib, g, "isdigit", "CINT"),
		mut(CLib, g, "isgraph", "CINT"),
		mut(CLib, g, "islower", "CINT"),
		mut(CLib, g, "isprint", "CINT"),
		mut(CLib, g, "ispunct", "CINT"),
		mut(CLib, g, "isspace", "CINT"),
		mut(CLib, g, "isupper", "CINT"),
		mut(CLib, g, "isxdigit", "CINT"),
		wide(mut(CLib, g, "tolower", "CINT")),
		mut(CLib, g, "toupper", "CINT"),
	}
}

func clibString() []MuT { // 14 functions, all with CE UNICODE siblings
	g := GrpCString
	return []MuT{
		wide(mut(CLib, g, "strcat", "STRBUF", "CSTRING")),
		wide(mut(CLib, g, "strchr", "CSTRING", "CINT")),
		wide(mut(CLib, g, "strcmp", "CSTRING", "CSTRING")),
		wide(mut(CLib, g, "strcpy", "STRBUF", "CSTRING")),
		wide(mut(CLib, g, "strcspn", "CSTRING", "CSTRING")),
		wide(mut(CLib, g, "strlen", "CSTRING")),
		wide(mut(CLib, g, "strncat", "STRBUF", "CSTRING", "SIZE_T")),
		wide(mut(CLib, g, "strncmp", "CSTRING", "CSTRING", "SIZE_T")),
		wide(mut(CLib, g, "strncpy", "STRBUF", "CSTRING", "SIZE_T")),
		wide(mut(CLib, g, "strpbrk", "CSTRING", "CSTRING")),
		wide(mut(CLib, g, "strrchr", "CSTRING", "CINT")),
		wide(mut(CLib, g, "strspn", "CSTRING", "CSTRING")),
		wide(mut(CLib, g, "strstr", "CSTRING", "CSTRING")),
		wide(mut(CLib, g, "strtok", "TOKBUF", "CSTRING")),
	}
}

func clibMemory() []MuT { // 9 functions
	g := GrpCMemory
	return []MuT{
		mut(CLib, g, "malloc", "SIZE_T"),
		mut(CLib, g, "calloc", "SIZE_T", "SIZE_T"),
		mut(CLib, g, "realloc", "HEAPBLK", "SIZE_T"),
		mut(CLib, g, "free", "HEAPBLK"),
		mut(CLib, g, "memcpy", "MEMBUF", "CMEMBUF", "MEMLEN"),
		mut(CLib, g, "memmove", "MEMBUF", "CMEMBUF", "MEMLEN"),
		mut(CLib, g, "memset", "MEMBUF", "CINT", "MEMLEN"),
		mut(CLib, g, "memcmp", "CMEMBUF", "CMEMBUF", "MEMLEN"),
		mut(CLib, g, "memchr", "CMEMBUF", "CINT", "MEMLEN"),
	}
}

func clibMath() []MuT { // 22 functions
	g := GrpCMath
	return []MuT{
		mut(CLib, g, "abs", "CINT"),
		mut(CLib, g, "labs", "CLONG"),
		mut(CLib, g, "div", "CINT", "CINT"),
		mut(CLib, g, "ldiv", "CLONG", "CLONG"),
		mut(CLib, g, "fabs", "DOUBLE"),
		mut(CLib, g, "ceil", "DOUBLE"),
		mut(CLib, g, "floor", "DOUBLE"),
		mut(CLib, g, "fmod", "DOUBLE", "DOUBLE"),
		mut(CLib, g, "sqrt", "DOUBLE"),
		mut(CLib, g, "pow", "DOUBLE", "DOUBLE"),
		mut(CLib, g, "exp", "DOUBLE"),
		mut(CLib, g, "log", "DOUBLE"),
		mut(CLib, g, "log10", "DOUBLE"),
		mut(CLib, g, "sin", "DOUBLE"),
		mut(CLib, g, "cos", "DOUBLE"),
		mut(CLib, g, "tan", "DOUBLE"),
		mut(CLib, g, "asin", "DOUBLE"),
		mut(CLib, g, "acos", "DOUBLE"),
		mut(CLib, g, "atan", "DOUBLE"),
		mut(CLib, g, "atan2", "DOUBLE", "DOUBLE"),
		mut(CLib, g, "frexp", "DOUBLE", "INTPTR"),
		mut(CLib, g, "modf", "DOUBLE", "DOUBLEPTR"),
	}
}

func clibTime() []MuT { // 9 functions (group unsupported on Windows CE)
	g := GrpCTime
	return []MuT{
		mut(CLib, g, "time", "TIMETPTR"),
		mut(CLib, g, "clock"),
		mut(CLib, g, "difftime", "TIME_T", "TIME_T"),
		mut(CLib, g, "mktime", "TMPTR"),
		mut(CLib, g, "asctime", "TMPTR"),
		mut(CLib, g, "ctime", "TIMETPTR"),
		mut(CLib, g, "gmtime", "TIMETPTR"),
		mut(CLib, g, "localtime", "TIMETPTR"),
		mut(CLib, g, "strftime", "STRBUF", "SIZE_T", "FMT", "TMPTR"),
	}
}

func clibFileIO() []MuT { // 13 functions
	g := GrpCFileIO
	return []MuT{
		wide(mut(CLib, g, "fopen", "PATH", "FILEMODE")),
		wide(mut(CLib, g, "freopen", "PATH", "FILEMODE", "FILEPTR")),
		mut(CLib, g, "fclose", "FILEPTR"),
		mut(CLib, g, "fflush", "FILEPTR"),
		mut(CLib, g, "fseek", "FILEPTR", "CLONG", "SEEKORIGIN"),
		mut(CLib, g, "ftell", "FILEPTR"),
		mut(CLib, g, "rewind", "FILEPTR"),
		mut(CLib, g, "fgetpos", "FILEPTR", "FPOSPTR"),
		mut(CLib, g, "fsetpos", "FILEPTR", "FPOSPTR"),
		mut(CLib, g, "clearerr", "FILEPTR"),
		mut(CLib, g, "feof", "FILEPTR"),
		mut(CLib, g, "ferror", "FILEPTR"),
		mut(CLib, g, "setvbuf", "FILEPTR", "MEMBUF", "BUFMODE", "SIZE_T"),
	}
}

func clibStreamIO() []MuT { // 14 functions
	g := GrpCStreamIO
	return []MuT{
		mut(CLib, g, "fread", "MEMBUF", "SIZE_T", "SIZE_T", "FILEPTR"),
		mut(CLib, g, "fwrite", "CMEMBUF", "SIZE_T", "SIZE_T", "FILEPTR"),
		wide(mut(CLib, g, "fgetc", "FILEPTR")),
		wide(mut(CLib, g, "fgets", "STRBUF", "CINT", "FILEPTR")),
		wide(mut(CLib, g, "fputc", "CINT", "FILEPTR")),
		wide(mut(CLib, g, "fputs", "CSTRING", "FILEPTR")),
		wide(mut(CLib, g, "getc", "FILEPTR")),
		wide(mut(CLib, g, "putc", "CINT", "FILEPTR")),
		wide(mut(CLib, g, "ungetc", "CINT", "FILEPTR")),
		wide(mut(CLib, g, "fprintf", "FILEPTR", "FMT")),
		wide(mut(CLib, g, "fscanf", "FILEPTR", "FMT")),
		mut(CLib, g, "sprintf", "STRBUF", "FMT"),
		mut(CLib, g, "sscanf", "CSTRING", "FMT"),
		mut(CLib, g, "puts", "CSTRING"),
	}
}

// ceCLibExcluded lists the 12 C functions Windows CE does not support:
// the whole C time group (9) plus three file-I/O management functions,
// leaving CE's 82 (and, per the paper, 10 testable functions in the C
// file I/O management group and 14 in C stream I/O).
var ceCLibExcluded = map[string]bool{
	"time": true, "clock": true, "difftime": true, "mktime": true,
	"asctime": true, "ctime": true, "gmtime": true, "localtime": true,
	"strftime": true,
	"rewind":   true, "fgetpos": true, "fsetpos": true,
}

// CERawStreamNarrow/CERawStreamWide mark the seventeen C functions whose
// Windows CE implementations hand stream state to the kernel without
// probing — the paper's seventeen Catastrophic FILE* functions.  The
// narrow set covers functions whose ASCII variant crashed; the wide set
// those whose UNICODE variant crashed (freopen crashed only as
// _wfreopen; the nine character-oriented stream functions crashed in
// both variants).
var (
	ceRawStreamNarrow = map[string]bool{
		"clearerr": true, "fclose": true, "fflush": true,
		"fseek": true, "ftell": true, "fread": true, "fwrite": true,
		"fgetc": true, "fgets": true, "fprintf": true, "fputc": true,
		"fputs": true, "fscanf": true, "getc": true, "putc": true,
		"ungetc": true,
	}
	ceRawStreamWide = map[string]bool{
		"freopen": true,
		"fgetc":   true, "fgets": true, "fprintf": true, "fputc": true,
		"fputs": true, "fscanf": true, "getc": true, "putc": true,
		"ungetc": true,
	}
)

// CEStdioRawKernel reports whether a C function's CE implementation (in
// the given variant) reaches the kernel through unprobed stream state.
func CEStdioRawKernel(name string, wide bool) bool {
	if wide {
		return ceRawStreamWide[name]
	}
	return ceRawStreamNarrow[name]
}
