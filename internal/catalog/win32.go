package catalog

// Win32MuTs returns the Win32 system calls under test: the paper's 143
// calls grouped per its five system-call categories, plus the Winsock
// sockets group added after the paper reproduction was complete.  The
// I/O Primitives group is the paper's own published list; the other
// paper groups were reconstructed to the paper's counts from the common
// kernel services named in its §1 (memory management, file and
// directory management, I/O, and process execution/control).
func Win32MuTs() []MuT {
	var m []MuT
	m = append(m, win32IOPrimitives()...)
	m = append(m, win32MemoryManagement()...)
	m = append(m, win32FileDirAccess()...)
	m = append(m, win32ProcessPrimitives()...)
	m = append(m, win32ProcessEnvironment()...)
	m = append(m, win32SocketMuTs()...)
	return m
}

// win32IOPrimitives is the paper's exact I/O Primitives list (15 calls).
func win32IOPrimitives() []MuT {
	g := GrpIOPrimitives
	return []MuT{
		mut(Win32, g, "AttachThreadInput", "TID", "TID", "BOOL"),
		mut(Win32, g, "CloseHandle", "HANDLE"),
		mut(Win32, g, "DuplicateHandle", "HPROCESS", "HANDLE", "HPROCESS", "LPHANDLE", "ACCESS_MASK", "BOOL", "DUP_FLAGS"),
		mut(Win32, g, "FlushFileBuffers", "HFILE"),
		mut(Win32, g, "GetStdHandle", "STD_SLOT"),
		mut(Win32, g, "LockFile", "HFILE", "OFF32", "OFF32", "LEN32", "LEN32"),
		mut(Win32, g, "LockFileEx", "HFILE", "LOCK_FLAGS", "DWORD0", "LEN32", "LEN32", "LPOVERLAPPED"),
		mut(Win32, g, "ReadFile", "HFILE", "LPVOID", "LEN32", "LPDWORD", "LPOVERLAPPED"),
		mut(Win32, g, "ReadFileEx", "HFILE", "LPVOID", "LEN32", "LPOVERLAPPED", "FUNCPTR"),
		mut(Win32, g, "SetFilePointer", "HFILE", "OFF32S", "LPLONG", "SEEK_METHOD"),
		mut(Win32, g, "SetStdHandle", "STD_SLOT", "HANDLE"),
		mut(Win32, g, "UnlockFile", "HFILE", "OFF32", "OFF32", "LEN32", "LEN32"),
		mut(Win32, g, "UnlockFileEx", "HFILE", "DWORD0", "LEN32", "LEN32", "LPOVERLAPPED"),
		mut(Win32, g, "WriteFile", "HFILE", "LPCVOID", "LEN32", "LPDWORD", "LPOVERLAPPED"),
		mut(Win32, g, "WriteFileEx", "HFILE", "LPCVOID", "LEN32", "LPOVERLAPPED", "FUNCPTR"),
	}
}

func win32MemoryManagement() []MuT { // 25 calls
	g := GrpMemoryManagement
	return []MuT{
		mut(Win32, g, "VirtualAlloc", "LPVOID_BASE", "SIZE32", "ALLOC_TYPE", "PROT_FLAGS"),
		mut(Win32, g, "VirtualFree", "LPVOID_BASE", "SIZE32", "FREE_TYPE"),
		mut(Win32, g, "VirtualProtect", "LPVOID_BASE", "SIZE32", "PROT_FLAGS", "LPDWORD"),
		mut(Win32, g, "VirtualQuery", "LPCVOID", "LPMEMBASICINFO", "SIZE32"),
		mut(Win32, g, "VirtualLock", "LPVOID_BASE", "SIZE32"),
		mut(Win32, g, "VirtualUnlock", "LPVOID_BASE", "SIZE32"),
		mut(Win32, g, "HeapCreate", "HEAP_FLAGS", "SIZE32", "SIZE32"),
		mut(Win32, g, "HeapDestroy", "HHEAP"),
		mut(Win32, g, "HeapAlloc", "HHEAP", "HEAP_FLAGS", "SIZE32"),
		mut(Win32, g, "HeapFree", "HHEAP", "HEAP_FLAGS", "HEAPPTR"),
		mut(Win32, g, "HeapReAlloc", "HHEAP", "HEAP_FLAGS", "HEAPPTR", "SIZE32"),
		mut(Win32, g, "HeapSize", "HHEAP", "HEAP_FLAGS", "HEAPPTR"),
		mut(Win32, g, "HeapValidate", "HHEAP", "HEAP_FLAGS", "HEAPPTR"),
		mut(Win32, g, "HeapCompact", "HHEAP", "HEAP_FLAGS"),
		mut(Win32, g, "GlobalAlloc", "GMEM_FLAGS", "SIZE32"),
		mut(Win32, g, "GlobalFree", "HGLOBAL"),
		mut(Win32, g, "GlobalReAlloc", "HGLOBAL", "SIZE32", "GMEM_FLAGS"),
		mut(Win32, g, "GlobalSize", "HGLOBAL"),
		mut(Win32, g, "LocalAlloc", "GMEM_FLAGS", "SIZE32"),
		mut(Win32, g, "LocalFree", "HGLOBAL"),
		mut(Win32, g, "LocalReAlloc", "HGLOBAL", "SIZE32", "GMEM_FLAGS"),
		mut(Win32, g, "LocalSize", "HGLOBAL"),
		mut(Win32, g, "GlobalMemoryStatus", "LPMEMORYSTATUS"),
		mut(Win32, g, "IsBadReadPtr", "LPCVOID", "SIZE32"),
		mut(Win32, g, "IsBadWritePtr", "LPVOID", "SIZE32"),
	}
}

func win32FileDirAccess() []MuT { // 34 calls
	g := GrpFileDirAccess
	return []MuT{
		mut(Win32, g, "CreateFile", "LPPATH", "ACCESS_MASK", "SHARE_FLAGS", "LPSECURITY_ATTRIBUTES", "CREATE_DISP", "FILE_ATTRS", "HANDLE"),
		mut(Win32, g, "DeleteFile", "LPPATH"),
		mut(Win32, g, "CopyFile", "LPPATH", "LPPATH", "BOOL"),
		mut(Win32, g, "MoveFile", "LPPATH", "LPPATH"),
		mut(Win32, g, "MoveFileEx", "LPPATH", "LPPATH", "MOVE_FLAGS"),
		mut(Win32, g, "CreateDirectory", "LPPATH", "LPSECURITY_ATTRIBUTES"),
		mut(Win32, g, "CreateDirectoryEx", "LPPATH", "LPPATH", "LPSECURITY_ATTRIBUTES"),
		mut(Win32, g, "RemoveDirectory", "LPPATH"),
		mut(Win32, g, "GetFileAttributes", "LPPATH"),
		mut(Win32, g, "SetFileAttributes", "LPPATH", "FILE_ATTRS"),
		mut(Win32, g, "GetFileSize", "HFILE", "LPDWORD"),
		mut(Win32, g, "GetFileTime", "HFILE", "LPFILETIME", "LPFILETIME", "LPFILETIME"),
		mut(Win32, g, "SetFileTime", "HFILE", "LPFILETIME", "LPFILETIME", "LPFILETIME"),
		mut(Win32, g, "FileTimeToSystemTime", "LPFILETIME", "LPSYSTEMTIME"),
		mut(Win32, g, "SystemTimeToFileTime", "LPSYSTEMTIME", "LPFILETIME"),
		mut(Win32, g, "FileTimeToLocalFileTime", "LPFILETIME", "LPFILETIME"),
		mut(Win32, g, "LocalFileTimeToFileTime", "LPFILETIME", "LPFILETIME"),
		mut(Win32, g, "CompareFileTime", "LPFILETIME", "LPFILETIME"),
		mut(Win32, g, "GetFileInformationByHandle", "HFILE", "LPBYHANDLEINFO"),
		mut(Win32, g, "GetFileType", "HFILE"),
		mut(Win32, g, "FindFirstFile", "LPPATH", "LPFINDDATA"),
		mut(Win32, g, "FindNextFile", "HFIND", "LPFINDDATA"),
		mut(Win32, g, "FindClose", "HFIND"),
		mut(Win32, g, "GetCurrentDirectory", "LEN32", "LPSTRBUF"),
		mut(Win32, g, "SetCurrentDirectory", "LPPATH"),
		mut(Win32, g, "GetFullPathName", "LPPATH", "LEN32", "LPSTRBUF", "LPLPSTR"),
		mut(Win32, g, "GetTempPath", "LEN32", "LPSTRBUF"),
		mut(Win32, g, "GetTempFileName", "LPPATH", "LPCSTR", "UINT32", "LPSTRBUF"),
		mut(Win32, g, "SearchPath", "LPPATH", "LPCSTR", "LPCSTR", "LEN32", "LPSTRBUF", "LPLPSTR"),
		mut(Win32, g, "GetDriveType", "LPPATH"),
		mut(Win32, g, "GetDiskFreeSpace", "LPPATH", "LPDWORD", "LPDWORD", "LPDWORD", "LPDWORD"),
		mut(Win32, g, "GetLogicalDrives"),
		mut(Win32, g, "SetEndOfFile", "HFILE"),
		mut(Win32, g, "GetShortPathName", "LPPATH", "LPSTRBUF", "LEN32"),
	}
}

func win32ProcessPrimitives() []MuT { // 33 calls
	g := GrpProcessPrimitives
	return []MuT{
		mut(Win32, g, "CreateProcess", "LPPATH", "LPSTRBUF", "LPSECURITY_ATTRIBUTES", "LPSECURITY_ATTRIBUTES", "BOOL", "CREATE_FLAGS", "LPVOID", "LPPATH", "LPSTARTUPINFO", "LPPROCINFO"),
		mut(Win32, g, "OpenProcess", "ACCESS_MASK", "BOOL", "PID32"),
		mut(Win32, g, "TerminateProcess", "HPROCESS", "EXITCODE"),
		mut(Win32, g, "GetExitCodeProcess", "HPROCESS", "LPDWORD"),
		mut(Win32, g, "CreateThread", "LPSECURITY_ATTRIBUTES", "SIZE32", "FUNCPTR", "LPVOID", "CREATE_FLAGS", "LPDWORD"),
		mut(Win32, g, "TerminateThread", "HTHREAD", "EXITCODE"),
		mut(Win32, g, "GetExitCodeThread", "HTHREAD", "LPDWORD"),
		mut(Win32, g, "SuspendThread", "HTHREAD"),
		mut(Win32, g, "ResumeThread", "HTHREAD"),
		mut(Win32, g, "SetThreadPriority", "HTHREAD", "PRIORITY"),
		mut(Win32, g, "GetThreadPriority", "HTHREAD"),
		mut(Win32, g, "WaitForSingleObject", "HWAITABLE", "TIMEOUT"),
		mut(Win32, g, "WaitForMultipleObjects", "COUNT32", "LPHANDLEARR", "BOOL", "TIMEOUT"),
		mut(Win32, g, "WaitForMultipleObjectsEx", "COUNT32", "LPHANDLEARR", "BOOL", "TIMEOUT", "BOOL"),
		mut(Win32, g, "MsgWaitForMultipleObjects", "COUNT32", "LPHANDLEARR", "BOOL", "TIMEOUT", "WAKE_MASK"),
		mut(Win32, g, "MsgWaitForMultipleObjectsEx", "COUNT32", "LPHANDLEARR", "TIMEOUT", "WAKE_MASK", "MWMO_FLAGS"),
		mut(Win32, g, "SignalObjectAndWait", "HWAITABLE", "HWAITABLE", "TIMEOUT", "BOOL"),
		mut(Win32, g, "Sleep", "TIMEOUT"),
		mut(Win32, g, "SleepEx", "TIMEOUT", "BOOL"),
		mut(Win32, g, "CreateEvent", "LPSECURITY_ATTRIBUTES", "BOOL", "BOOL", "LPCSTR"),
		mut(Win32, g, "SetEvent", "HEVENT"),
		mut(Win32, g, "ResetEvent", "HEVENT"),
		mut(Win32, g, "PulseEvent", "HEVENT"),
		mut(Win32, g, "OpenEvent", "ACCESS_MASK", "BOOL", "LPCSTR"),
		mut(Win32, g, "CreateMutex", "LPSECURITY_ATTRIBUTES", "BOOL", "LPCSTR"),
		mut(Win32, g, "ReleaseMutex", "HMUTEX"),
		mut(Win32, g, "OpenMutex", "ACCESS_MASK", "BOOL", "LPCSTR"),
		mut(Win32, g, "CreateSemaphore", "LPSECURITY_ATTRIBUTES", "COUNT32S", "COUNT32S", "LPCSTR"),
		mut(Win32, g, "ReleaseSemaphore", "HSEM", "COUNT32S", "LPLONG"),
		mut(Win32, g, "OpenSemaphore", "ACCESS_MASK", "BOOL", "LPCSTR"),
		mut(Win32, g, "ReadProcessMemory", "HPROCESS", "LPCVOID", "LPVOID", "SIZE32", "LPDWORD"),
		mut(Win32, g, "WriteProcessMemory", "HPROCESS", "LPVOID", "LPCVOID", "SIZE32", "LPDWORD"),
		mut(Win32, g, "GetProcessTimes", "HPROCESS", "LPFILETIME", "LPFILETIME", "LPFILETIME", "LPFILETIME"),
	}
}

func win32ProcessEnvironment() []MuT { // 36 calls
	g := GrpProcessEnvironment
	return []MuT{
		mut(Win32, g, "GetThreadContext", "HTHREAD", "LPCONTEXT"),
		mut(Win32, g, "SetThreadContext", "HTHREAD", "LPCONTEXT"),
		mut(Win32, g, "InterlockedIncrement", "LPLONG"),
		mut(Win32, g, "InterlockedDecrement", "LPLONG"),
		mut(Win32, g, "InterlockedExchange", "LPLONG", "LONG32"),
		mut(Win32, g, "GetEnvironmentVariable", "ENVNAME", "LPSTRBUF", "LEN32"),
		mut(Win32, g, "SetEnvironmentVariable", "ENVNAME", "LPCSTR"),
		mut(Win32, g, "ExpandEnvironmentStrings", "LPCSTR", "LPSTRBUF", "LEN32"),
		mut(Win32, g, "GetEnvironmentStrings"),
		mut(Win32, g, "FreeEnvironmentStrings", "ENVBLOCK"),
		mut(Win32, g, "GetSystemInfo", "LPSYSTEMINFO"),
		mut(Win32, g, "GetComputerName", "LPSTRBUF", "LPDWORD"),
		mut(Win32, g, "GetSystemDirectory", "LPSTRBUF", "LEN32"),
		mut(Win32, g, "GetWindowsDirectory", "LPSTRBUF", "LEN32"),
		mut(Win32, g, "GetVersion"),
		mut(Win32, g, "GetVersionEx", "LPOSVERSIONINFO"),
		mut(Win32, g, "GetSystemTime", "LPSYSTEMTIME"),
		mut(Win32, g, "GetLocalTime", "LPSYSTEMTIME"),
		mut(Win32, g, "SetSystemTime", "LPSYSTEMTIME"),
		mut(Win32, g, "SetLocalTime", "LPSYSTEMTIME"),
		mut(Win32, g, "GetSystemTimeAsFileTime", "LPFILETIME"),
		mut(Win32, g, "GetTickCount"),
		mut(Win32, g, "GetCurrentProcess"),
		mut(Win32, g, "GetCurrentThread"),
		mut(Win32, g, "GetCurrentProcessId"),
		mut(Win32, g, "GetCurrentThreadId"),
		mut(Win32, g, "GetModuleFileName", "HMODULE", "LPSTRBUF", "LEN32"),
		mut(Win32, g, "GetModuleHandle", "LPCSTR"),
		mut(Win32, g, "GetProcAddress", "HMODULE", "LPCSTR"),
		mut(Win32, g, "TlsAlloc"),
		mut(Win32, g, "TlsFree", "TLSINDEX"),
		mut(Win32, g, "TlsGetValue", "TLSINDEX"),
		mut(Win32, g, "TlsSetValue", "TLSINDEX", "LPVOID"),
		mut(Win32, g, "SetErrorMode", "ERRMODE"),
		mut(Win32, g, "GetPriorityClass", "HPROCESS"),
		mut(Win32, g, "SetPriorityClass", "HPROCESS", "PRIOCLASS"),
	}
}

// win95Missing lists the ten Win32 calls the paper notes were "not
// supported by Windows 95" but tested on the other desktop variants.
var win95Missing = map[string]bool{
	"MsgWaitForMultipleObjectsEx": true,
	"SignalObjectAndWait":         true,
	"WaitForMultipleObjectsEx":    true,
	"MoveFileEx":                  true,
	"CreateDirectoryEx":           true,
	"GetSystemTimeAsFileTime":     true,
	"GetProcessTimes":             true,
	"HeapCompact":                 true,
	"VirtualLock":                 true,
	"VirtualUnlock":               true,
}

// ceSystemCalls lists the 71 Win32 system calls the Windows CE 2.11
// subset supports.
var ceSystemCalls = map[string]bool{
	// I/O Primitives (8 of 15)
	"CloseHandle": true, "DuplicateHandle": true, "FlushFileBuffers": true,
	"GetStdHandle": true, "ReadFile": true, "SetFilePointer": true,
	"SetStdHandle": true, "WriteFile": true,
	// Memory Management (13 of 25)
	"VirtualAlloc": true, "VirtualFree": true, "VirtualProtect": true,
	"VirtualQuery": true, "HeapCreate": true, "HeapDestroy": true,
	"HeapAlloc": true, "HeapFree": true, "HeapReAlloc": true,
	"HeapSize": true, "LocalAlloc": true, "LocalFree": true,
	"LocalReAlloc": true,
	// File/Directory Access (21 of 34)
	"CreateFile": true, "DeleteFile": true, "CopyFile": true,
	"MoveFile": true, "CreateDirectory": true, "RemoveDirectory": true,
	"GetFileAttributes": true, "SetFileAttributes": true,
	"GetFileSize": true, "GetFileTime": true, "SetFileTime": true,
	"FileTimeToSystemTime": true, "SystemTimeToFileTime": true,
	"FileTimeToLocalFileTime": true, "LocalFileTimeToFileTime": true,
	"CompareFileTime": true, "GetFileInformationByHandle": true,
	"FindFirstFile": true, "FindNextFile": true, "FindClose": true,
	"GetTempFileName": true,
	// Process Primitives (19 of 33)
	"ReadProcessMemory": true,
	"CreateProcess":     true, "OpenProcess": true, "TerminateProcess": true,
	"GetExitCodeProcess": true, "CreateThread": true, "TerminateThread": true,
	"GetExitCodeThread": true, "SuspendThread": true, "ResumeThread": true,
	"SetThreadPriority": true, "GetThreadPriority": true,
	"WaitForSingleObject": true, "WaitForMultipleObjects": true,
	"MsgWaitForMultipleObjects": true, "MsgWaitForMultipleObjectsEx": true,
	"Sleep": true, "CreateEvent": true, "SetEvent": true,
	// Process Environment (10 of 36)
	"GetThreadContext": true, "SetThreadContext": true,
	"InterlockedIncrement": true, "InterlockedDecrement": true,
	"InterlockedExchange": true, "GetVersionEx": true,
	"GetSystemTime": true, "GetLocalTime": true,
	"GetTickCount": true, "GetCurrentProcess": true,
}
