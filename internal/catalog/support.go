package catalog

import "ballista/internal/osprofile"

// Supported reports whether an OS variant implements a MuT, reproducing
// the paper's support matrix: Windows 95 lacks 10 Win32 system calls;
// Windows CE supports 71 system calls and 82 C functions; Linux tests
// the POSIX surface plus the shared C library.
func Supported(o osprofile.OS, m MuT) bool {
	switch m.API {
	case POSIX:
		return o == osprofile.Linux
	case Win32:
		switch o {
		case osprofile.Linux:
			return false
		case osprofile.Win95:
			// Winsock 1.1 shipped with Windows 95; the sockets group is
			// outside the paper's support census, which only covers the
			// 143 paper MuTs.
			return m.Group == GrpSockets || !win95Missing[m.Name]
		case osprofile.WinCE:
			// winsock.dll is part of every CE configuration.
			return m.Group == GrpSockets || ceSystemCalls[m.Name]
		default:
			return true
		}
	case CLib:
		if o == osprofile.WinCE {
			return !ceCLibExcluded[m.Name]
		}
		return true
	default:
		return false
	}
}

// MuTsFor returns every MuT an OS variant tests, in catalog order:
// Win32 (or POSIX) system calls followed by the C library.
func MuTsFor(o osprofile.OS) []MuT {
	var out []MuT
	sys := Win32MuTs()
	if o == osprofile.Linux {
		sys = POSIXMuTs()
	}
	for _, m := range sys {
		if Supported(o, m) {
			out = append(out, m)
		}
	}
	for _, m := range CLibMuTs() {
		if Supported(o, m) {
			out = append(out, m)
		}
	}
	return out
}

// WidePairCount returns the number of C functions with both ASCII and
// UNICODE implementations among those an OS supports (26 on Windows CE).
func WidePairCount(o osprofile.OS) int {
	n := 0
	for _, m := range CLibMuTs() {
		if m.HasWide && Supported(o, m) {
			n++
		}
	}
	return n
}
