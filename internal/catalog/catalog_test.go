package catalog

import (
	"testing"

	"ballista/internal/osprofile"
)

// TestPaperCounts pins the catalog to the paper's Table 1 census.  The
// post-paper sockets group is filtered out: the paper's numbers must
// stay reproducible as the catalog grows past them.
func TestPaperCounts(t *testing.T) {
	tests := []struct {
		name string
		got  int
		want int
	}{
		{"Win32 system calls", len(paperOnly(Win32MuTs())), 143},
		{"POSIX system calls", len(paperOnly(POSIXMuTs())), 91},
		{"C library functions", len(paperOnly(CLibMuTs())), 94},
		{"Windows 95 MuTs", len(catalogFor(osprofile.Win95)), 227},
		{"Windows 98 MuTs", len(catalogFor(osprofile.Win98)), 237},
		{"Windows NT MuTs", len(catalogFor(osprofile.WinNT)), 237},
		{"Windows 2000 MuTs", len(catalogFor(osprofile.Win2000)), 237},
		{"Windows CE MuTs", len(catalogFor(osprofile.WinCE)), 153},
		{"Linux MuTs", len(catalogFor(osprofile.Linux)), 185},
		{"CE wide pairs", WidePairCount(osprofile.WinCE), 26},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("%s = %d, want %d", tt.name, tt.got, tt.want)
		}
	}
}

// paperOnly strips post-paper groups from a MuT list.
func paperOnly(ms []MuT) []MuT {
	var out []MuT
	for _, m := range ms {
		if m.Group != GrpSockets {
			out = append(out, m)
		}
	}
	return out
}

func catalogFor(o osprofile.OS) []MuT { return paperOnly(MuTsFor(o)) }

// TestSocketGroup pins the sockets extension: ten Winsock calls, eight
// BSD calls, an eight-name cross-surface intersection for the
// differential voter, and support on every OS profile.
func TestSocketGroup(t *testing.T) {
	winNames := make(map[string]bool)
	nWin := 0
	for _, m := range Win32MuTs() {
		if m.Group == GrpSockets {
			winNames[m.Name] = true
			nWin++
		}
	}
	if nWin != 10 {
		t.Errorf("Winsock group = %d MuTs, want 10", nWin)
	}
	shared := 0
	nPosix := 0
	for _, m := range POSIXMuTs() {
		if m.Group != GrpSockets {
			continue
		}
		nPosix++
		if winNames[m.Name] {
			shared++
		}
	}
	if nPosix != 8 {
		t.Errorf("BSD sockets group = %d MuTs, want 8", nPosix)
	}
	if shared != 8 {
		t.Errorf("cross-surface socket name intersection = %d, want 8", shared)
	}
	for _, o := range osprofile.All() {
		n := 0
		for _, m := range MuTsFor(o) {
			if m.Group == GrpSockets {
				n++
			}
		}
		want := 10
		if o == osprofile.Linux {
			want = 8
		}
		if n != want {
			t.Errorf("%s: socket MuTs = %d, want %d", o, n, want)
		}
	}
}

func TestGroupCounts(t *testing.T) {
	count := func(api API, g Group) int {
		n := 0
		for _, m := range ForAPI(api) {
			if m.Group == g {
				n++
			}
		}
		return n
	}
	tests := []struct {
		api  API
		g    Group
		want int
	}{
		// The paper's published I/O Primitives lists.
		{Win32, GrpIOPrimitives, 15},
		{POSIX, GrpIOPrimitives, 10},
		// C library groups per §4 (CE tested 10 of the file I/O group and
		// all 14 stream functions).
		{CLib, GrpCChar, 13},
		{CLib, GrpCString, 14},
		{CLib, GrpCMemory, 9},
		{CLib, GrpCMath, 22},
		{CLib, GrpCTime, 9},
		{CLib, GrpCFileIO, 13},
		{CLib, GrpCStreamIO, 14},
	}
	for _, tt := range tests {
		if got := count(tt.api, tt.g); got != tt.want {
			t.Errorf("%v %v = %d, want %d", tt.api, tt.g, got, tt.want)
		}
	}
}

// TestCESubsetCounts checks CE's split: 71 system calls + 82 C functions,
// 108 C functions counting UNICODE/ASCII pairs separately.
func TestCESubsetCounts(t *testing.T) {
	sys, clib, wide := 0, 0, 0
	for _, m := range catalogFor(osprofile.WinCE) {
		switch m.API {
		case Win32:
			sys++
		case CLib:
			clib++
			if m.HasWide {
				wide++
			}
		}
	}
	if sys != 71 {
		t.Errorf("CE system calls = %d, want 71", sys)
	}
	if clib != 82 {
		t.Errorf("CE C functions = %d, want 82", clib)
	}
	if clib+wide != 108 {
		t.Errorf("CE C functions counting pairs separately = %d, want 108", clib+wide)
	}
}

// TestDefectFunctionsExist ensures every Table 3 defect names a function
// that exists (and is supported) on its OS.
func TestDefectFunctionsExist(t *testing.T) {
	for _, o := range osprofile.All() {
		p := osprofile.Get(o)
		supported := make(map[string]bool)
		for _, m := range MuTsFor(o) {
			supported[m.Name] = true
		}
		for _, fn := range p.DefectFunctions() {
			if !supported[fn] {
				t.Errorf("%s: defect function %q not in its catalog", o, fn)
			}
		}
	}
}

// TestTable3CatastrophicCounts pins the per-OS Catastrophic MuT counts
// from Table 1: W95=8, W98=7, W98SE=7, CE=28 (10 system calls + 17 FILE*
// functions + UNICODE strncpy), Linux/NT/2000 = 0.
func TestTable3CatastrophicCounts(t *testing.T) {
	staticCounts := map[osprofile.OS]int{
		osprofile.Linux:   0,
		osprofile.Win95:   8,
		osprofile.Win98:   7,
		osprofile.Win98SE: 7,
		osprofile.WinNT:   0,
		osprofile.Win2000: 0,
		osprofile.WinCE:   11, // 10 system calls + strncpy (wide)
	}
	for o, want := range staticCounts {
		if got := len(osprofile.Get(o).DefectFunctions()); got != want {
			t.Errorf("%s: defect table size = %d, want %d", o, got, want)
		}
	}

	// CE's seventeen FILE* functions come from the StdioRawKernel trait.
	unique := make(map[string]bool)
	sep := 0
	for _, m := range CLibMuTs() {
		if !Supported(osprofile.WinCE, m) {
			continue
		}
		if CEStdioRawKernel(m.Name, false) {
			unique[m.Name] = true
			sep++
		}
		if m.HasWide && CEStdioRawKernel(m.Name, true) {
			unique[m.Name] = true
			sep++
		}
	}
	if len(unique) != 17 {
		t.Errorf("CE raw-stream FILE* functions = %d, want 17", len(unique))
	}
	// Plus UNICODE strncpy: 18 unique, 27 counting variants separately.
	if got := sep + 1; got != 27 {
		t.Errorf("CE Catastrophic C functions counting variants separately = %d, want 27", got)
	}
}
