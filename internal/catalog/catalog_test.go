package catalog

import (
	"testing"

	"ballista/internal/osprofile"
)

// TestPaperCounts pins the catalog to the paper's Table 1 census.
func TestPaperCounts(t *testing.T) {
	tests := []struct {
		name string
		got  int
		want int
	}{
		{"Win32 system calls", len(Win32MuTs()), 143},
		{"POSIX system calls", len(POSIXMuTs()), 91},
		{"C library functions", len(CLibMuTs()), 94},
		{"Windows 95 MuTs", len(catalogFor(osprofile.Win95)), 227},
		{"Windows 98 MuTs", len(catalogFor(osprofile.Win98)), 237},
		{"Windows NT MuTs", len(catalogFor(osprofile.WinNT)), 237},
		{"Windows 2000 MuTs", len(catalogFor(osprofile.Win2000)), 237},
		{"Windows CE MuTs", len(catalogFor(osprofile.WinCE)), 153},
		{"Linux MuTs", len(catalogFor(osprofile.Linux)), 185},
		{"CE wide pairs", WidePairCount(osprofile.WinCE), 26},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("%s = %d, want %d", tt.name, tt.got, tt.want)
		}
	}
}

func catalogFor(o osprofile.OS) []MuT { return MuTsFor(o) }

func TestGroupCounts(t *testing.T) {
	count := func(api API, g Group) int {
		n := 0
		for _, m := range ForAPI(api) {
			if m.Group == g {
				n++
			}
		}
		return n
	}
	tests := []struct {
		api  API
		g    Group
		want int
	}{
		// The paper's published I/O Primitives lists.
		{Win32, GrpIOPrimitives, 15},
		{POSIX, GrpIOPrimitives, 10},
		// C library groups per §4 (CE tested 10 of the file I/O group and
		// all 14 stream functions).
		{CLib, GrpCChar, 13},
		{CLib, GrpCString, 14},
		{CLib, GrpCMemory, 9},
		{CLib, GrpCMath, 22},
		{CLib, GrpCTime, 9},
		{CLib, GrpCFileIO, 13},
		{CLib, GrpCStreamIO, 14},
	}
	for _, tt := range tests {
		if got := count(tt.api, tt.g); got != tt.want {
			t.Errorf("%v %v = %d, want %d", tt.api, tt.g, got, tt.want)
		}
	}
}

// TestCESubsetCounts checks CE's split: 71 system calls + 82 C functions,
// 108 C functions counting UNICODE/ASCII pairs separately.
func TestCESubsetCounts(t *testing.T) {
	sys, clib, wide := 0, 0, 0
	for _, m := range MuTsFor(osprofile.WinCE) {
		switch m.API {
		case Win32:
			sys++
		case CLib:
			clib++
			if m.HasWide {
				wide++
			}
		}
	}
	if sys != 71 {
		t.Errorf("CE system calls = %d, want 71", sys)
	}
	if clib != 82 {
		t.Errorf("CE C functions = %d, want 82", clib)
	}
	if clib+wide != 108 {
		t.Errorf("CE C functions counting pairs separately = %d, want 108", clib+wide)
	}
}

// TestDefectFunctionsExist ensures every Table 3 defect names a function
// that exists (and is supported) on its OS.
func TestDefectFunctionsExist(t *testing.T) {
	for _, o := range osprofile.All() {
		p := osprofile.Get(o)
		supported := make(map[string]bool)
		for _, m := range MuTsFor(o) {
			supported[m.Name] = true
		}
		for _, fn := range p.DefectFunctions() {
			if !supported[fn] {
				t.Errorf("%s: defect function %q not in its catalog", o, fn)
			}
		}
	}
}

// TestTable3CatastrophicCounts pins the per-OS Catastrophic MuT counts
// from Table 1: W95=8, W98=7, W98SE=7, CE=28 (10 system calls + 17 FILE*
// functions + UNICODE strncpy), Linux/NT/2000 = 0.
func TestTable3CatastrophicCounts(t *testing.T) {
	staticCounts := map[osprofile.OS]int{
		osprofile.Linux:   0,
		osprofile.Win95:   8,
		osprofile.Win98:   7,
		osprofile.Win98SE: 7,
		osprofile.WinNT:   0,
		osprofile.Win2000: 0,
		osprofile.WinCE:   11, // 10 system calls + strncpy (wide)
	}
	for o, want := range staticCounts {
		if got := len(osprofile.Get(o).DefectFunctions()); got != want {
			t.Errorf("%s: defect table size = %d, want %d", o, got, want)
		}
	}

	// CE's seventeen FILE* functions come from the StdioRawKernel trait.
	unique := make(map[string]bool)
	sep := 0
	for _, m := range CLibMuTs() {
		if !Supported(osprofile.WinCE, m) {
			continue
		}
		if CEStdioRawKernel(m.Name, false) {
			unique[m.Name] = true
			sep++
		}
		if m.HasWide && CEStdioRawKernel(m.Name, true) {
			unique[m.Name] = true
			sep++
		}
	}
	if len(unique) != 17 {
		t.Errorf("CE raw-stream FILE* functions = %d, want 17", len(unique))
	}
	// Plus UNICODE strncpy: 18 unique, 27 counting variants separately.
	if got := sep + 1; got != 27 {
		t.Errorf("CE Catastrophic C functions counting variants separately = %d, want 27", got)
	}
}
