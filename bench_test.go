package ballista

// The benchmark harness regenerates every table and figure in the
// paper's evaluation (§4).  Each BenchmarkTableN/BenchmarkFigureN runs
// the campaigns that feed that exhibit and reports the headline numbers
// as custom metrics, so `go test -bench=.` reproduces the paper's
// results end to end.  benchCap trades fidelity for wall time; run
// `cmd/repro -cap 5000` for the full-scale reproduction recorded in
// EXPERIMENTS.md.

import (
	"context"
	"fmt"
	"testing"

	"ballista/internal/catalog"
	"ballista/internal/core"
	"ballista/internal/osprofile"
	"ballista/internal/report"
	"ballista/internal/sequence"
)

// benchCap is the per-MuT case limit for benchmark iterations (the
// paper's experiments use 5000; see EXPERIMENTS.md for full-cap runs).
const benchCap = 200

func runAllCached(b *testing.B) map[OS]*Result {
	b.Helper()
	results, err := RunAll(WithCap(benchCap))
	if err != nil {
		b.Fatal(err)
	}
	return results
}

// BenchmarkTable1 regenerates Table 1: normalized Abort/Restart failure
// rates and Catastrophic counts per OS, split into system calls and C
// library functions.
func BenchmarkTable1(b *testing.B) {
	var sums []report.Summary
	for i := 0; i < b.N; i++ {
		sums = Summaries(runAllCached(b))
	}
	for _, s := range sums {
		prefix := shortOS(s.OS)
		b.ReportMetric(s.SysAbortPct, prefix+"_sys_abort_pct")
		b.ReportMetric(s.CLibAbortPct, prefix+"_lib_abort_pct")
		b.ReportMetric(float64(s.TotalCatastrophic), prefix+"_catastrophic_muts")
	}
}

// BenchmarkTable2Figure1 regenerates the Table 2 / Figure 1 matrix: the
// twelve functional groups × seven OSes.  The reported metrics pin the
// paper's headline cells: Linux C char ≈30% vs Windows 0%.
func BenchmarkTable2Figure1(b *testing.B) {
	var matrix map[OS]map[catalog.Group]report.GroupRate
	for i := 0; i < b.N; i++ {
		matrix = GroupMatrix(runAllCached(b))
	}
	b.ReportMetric(matrix[Linux][catalog.GrpCChar].Pct, "linux_cchar_pct")
	b.ReportMetric(matrix[WinNT][catalog.GrpCChar].Pct, "nt_cchar_pct")
	b.ReportMetric(matrix[Linux][catalog.GrpCStreamIO].Pct, "linux_cstream_pct")
	b.ReportMetric(matrix[WinNT][catalog.GrpCStreamIO].Pct, "nt_cstream_pct")
	b.ReportMetric(matrix[WinNT][catalog.GrpFileDirAccess].Pct, "nt_filedir_pct")
	b.ReportMetric(matrix[Linux][catalog.GrpFileDirAccess].Pct, "linux_filedir_pct")
	// The paper's 4-of-12 conclusion as a single metric.
	higher := 0.0
	for _, g := range catalog.Groups() {
		if !matrix[Linux][g].NA && !matrix[WinNT][g].NA && matrix[Linux][g].Pct > matrix[WinNT][g].Pct {
			higher++
		}
	}
	b.ReportMetric(higher, "linux_higher_groups")
}

// BenchmarkTable3 regenerates the Catastrophic-function inventory and
// reports the per-OS counts the paper's Table 1/3 record (7/5/6/10
// system calls; 1/2/1 desktop C functions; 27 CE variants).
func BenchmarkTable3(b *testing.B) {
	var results map[OS]*Result
	for i := 0; i < b.N; i++ {
		results = runAllCached(b)
	}
	for _, o := range []OS{Win95, Win98, Win98SE, WinCE} {
		b.ReportMetric(float64(len(results[o].CatastrophicMuTs())), shortOS(o)+"_catastrophic")
	}
	for _, o := range []OS{Linux, WinNT, Win2000} {
		if n := len(results[o].CatastrophicMuTs()); n != 0 {
			b.Fatalf("%s crashed: %v", o, results[o].CatastrophicMuTs())
		}
	}
}

// BenchmarkFigure2 regenerates the estimated-Silent analysis: voting
// identical test cases across the five desktop Windows variants.
func BenchmarkFigure2(b *testing.B) {
	var silent map[OS]float64
	for i := 0; i < b.N; i++ {
		est := EstimateSilent(runAllCached(b))
		silent = make(map[OS]float64, len(est))
		for o, stats := range est {
			var sum float64
			var n int
			for _, s := range stats {
				if s.Group.SystemCallGroup() {
					sum += s.Rate()
					n++
				}
			}
			silent[o] = 100 * sum / float64(n)
		}
	}
	for o, v := range silent {
		b.ReportMetric(v, shortOS(o)+"_sys_silent_pct")
	}
}

// BenchmarkListing1 measures the single-test-case reproduction path with
// the paper's Listing 1 (GetThreadContext(GetCurrentThread(), NULL))
// against Windows 98, asserting the Catastrophic outcome each time.
func BenchmarkListing1(b *testing.B) {
	m, _ := catalog.ByName(catalog.Win32, "GetThreadContext")
	reg := Registry()
	tc := core.Case{valueIndex(b, reg, "HTHREAD", "PSEUDO_THREAD"), valueIndex(b, reg, "LPCONTEXT", "NULL")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cls, err := NewRunner(Win98, WithIsolation()).RunCase(m, tc, false)
		if err != nil {
			b.Fatal(err)
		}
		if cls != Catastrophic {
			b.Fatalf("Listing 1 classified %v", cls)
		}
	}
}

// BenchmarkSamplingAccuracy is the ablation behind the paper's 5000-case
// cap (§3.1, citing [9]): the capped pseudorandom sample's abort rate
// tracks exhaustive testing.  Reports both rates and their gap in
// percentage points.
func BenchmarkSamplingAccuracy(b *testing.B) {
	m, _ := catalog.ByName(catalog.Win32, "ReadFile") // ~46k combinations
	var sampled, exhaustive float64
	for i := 0; i < b.N; i++ {
		rs, err := NewRunner(WinNT, WithCap(2000)).RunMuT(context.Background(), m, false)
		if err != nil {
			b.Fatal(err)
		}
		re, err := NewRunner(WinNT, WithCap(1<<30)).RunMuT(context.Background(), m, false)
		if err != nil {
			b.Fatal(err)
		}
		sampled, exhaustive = 100*rs.AbortRate(), 100*re.AbortRate()
	}
	b.ReportMetric(sampled, "sampled_abort_pct")
	b.ReportMetric(exhaustive, "exhaustive_abort_pct")
	gap := sampled - exhaustive
	if gap < 0 {
		gap = -gap
	}
	b.ReportMetric(gap, "gap_pp")
	if gap > 5 {
		b.Errorf("sampling error %.1f pp exceeds the paper's accuracy claim", gap)
	}
}

// BenchmarkIsolationAblation compares shared-machine campaigns (the
// paper's setup, where "*" defects accumulate into crashes) against
// fresh-machine-per-case isolation (where they cannot reproduce),
// reporting the Catastrophic counts of each mode.
func BenchmarkIsolationAblation(b *testing.B) {
	var shared, isolated int
	for i := 0; i < b.N; i++ {
		rs, err := Run(Win98, WithCap(benchCap))
		if err != nil {
			b.Fatal(err)
		}
		ri, err := Run(Win98, WithCap(benchCap), WithIsolation())
		if err != nil {
			b.Fatal(err)
		}
		shared, isolated = len(rs.CatastrophicMuTs()), len(ri.CatastrophicMuTs())
	}
	b.ReportMetric(float64(shared), "shared_catastrophic")
	b.ReportMetric(float64(isolated), "isolated_catastrophic")
	if isolated >= shared {
		b.Errorf("isolation did not suppress harness-only crashes: %d vs %d", isolated, shared)
	}
}

// BenchmarkCampaignThroughput measures raw harness speed: test cases
// executed per second for a full Windows 98 campaign.
func BenchmarkCampaignThroughput(b *testing.B) {
	var cases int
	for i := 0; i < b.N; i++ {
		r, err := Run(Win98, WithCap(benchCap))
		if err != nil {
			b.Fatal(err)
		}
		cases = r.CasesRun
	}
	b.ReportMetric(float64(cases)*float64(b.N)/b.Elapsed().Seconds(), "cases/sec")
}

// BenchmarkCaseGeneration measures the test-case generator alone.
func BenchmarkCaseGeneration(b *testing.B) {
	sizes := []int{12, 11, 10, 8, 6}
	for i := 0; i < b.N; i++ {
		cases := core.GenerateCases(fmt.Sprintf("Fn%d", i%16), sizes, core.DefaultCap)
		if len(cases) != core.DefaultCap {
			b.Fatal("unexpected case count")
		}
	}
}

// BenchmarkSingleCase measures one complete test-case execution: fresh
// process, constructors, dispatch, classification, cleanup.
func BenchmarkSingleCase(b *testing.B) {
	m, _ := catalog.ByName(catalog.Win32, "CloseHandle")
	runner := NewRunner(WinNT)
	tc := core.Case{0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.RunCase(m, tc, false); err != nil {
			b.Fatal(err)
		}
	}
}

func valueIndex(b *testing.B, reg *core.Registry, typeName, valueName string) int {
	b.Helper()
	dt, ok := reg.Lookup(typeName)
	if !ok {
		b.Fatalf("type %s missing", typeName)
	}
	for i, v := range dt.Values {
		if v.Name == valueName {
			return i
		}
	}
	b.Fatalf("value %s/%s missing", typeName, valueName)
	return -1
}

func shortOS(o OS) string {
	switch o {
	case Linux:
		return "linux"
	case Win95:
		return "w95"
	case Win98:
		return "w98"
	case Win98SE:
		return "w98se"
	case WinNT:
		return "nt"
	case Win2000:
		return "w2k"
	case WinCE:
		return "ce"
	default:
		return "unknown"
	}
}

// BenchmarkProbeAblation is the DESIGN.md §7 architecture ablation: the
// Windows NT profile with kernel pointer probing disabled (and Windows
// 98's defect table substituted) crashes exactly where real NT throws
// exceptions — demonstrating that probing, not code quality, is what
// separates the families' Catastrophic behaviour.
func BenchmarkProbeAblation(b *testing.B) {
	var normal, ablated int
	for i := 0; i < b.N; i++ {
		rn, err := Run(WinNT, WithCap(benchCap))
		if err != nil {
			b.Fatal(err)
		}
		ra, err := Run(WinNT, WithCap(benchCap),
			WithProfile(osprofile.AblateProbing(WinNT, Win98)))
		if err != nil {
			b.Fatal(err)
		}
		normal, ablated = len(rn.CatastrophicMuTs()), len(ra.CatastrophicMuTs())
	}
	b.ReportMetric(float64(normal), "nt_catastrophic")
	b.ReportMetric(float64(ablated), "nt_noprobe_catastrophic")
	if normal != 0 {
		b.Errorf("real NT crashed (%d MuTs)", normal)
	}
	if ablated == 0 {
		b.Error("NT without probing should crash like Windows 98")
	}
}

// BenchmarkLoadAblation measures the §5 heavy-load future-work mode:
// failure pressure (error returns + allocation-failure skips) with and
// without resource pressure on the NT memory-management group.
func BenchmarkLoadAblation(b *testing.B) {
	frac := func(opts ...Option) float64 {
		runner := NewRunner(WinNT, append(opts, WithCap(benchCap))...)
		var bad, all int
		for _, m := range catalog.MuTsFor(WinNT) {
			if m.Group != catalog.GrpMemoryManagement {
				continue
			}
			res, err := runner.RunMuT(context.Background(), m, false)
			if err != nil {
				b.Fatal(err)
			}
			bad += res.Count(ErrorReturn) + res.Count(Skip)
			all += len(res.Cases)
		}
		return 100 * float64(bad) / float64(all)
	}
	var base, loaded float64
	for i := 0; i < b.N; i++ {
		base = frac()
		loaded = frac(WithLoad(DefaultLoad()))
	}
	b.ReportMetric(base, "baseline_pressure_pct")
	b.ReportMetric(loaded, "loaded_pressure_pct")
}

// BenchmarkSequenceHunt measures the §5 sequence-dependence explorer
// rediscovering the Windows 98 strncpy inter-test-interference crash.
func BenchmarkSequenceHunt(b *testing.B) {
	var muts []catalog.MuT
	for _, m := range catalog.MuTsFor(Win98) {
		if m.Name == "strncpy" || m.Name == "fwrite" {
			muts = append(muts, m)
		}
	}
	var crashes int
	for i := 0; i < b.N; i++ {
		ex := sequence.New(func() *core.Runner { return NewRunner(Win98) }, muts,
			sequence.Config{CasesPerMuT: 8, MaxPairs: 1500})
		findings, err := ex.Explore(Registry())
		if err != nil {
			b.Fatal(err)
		}
		crashes = len(sequence.CatastrophicFindings(findings))
	}
	b.ReportMetric(float64(crashes), "crash_recipes")
	if crashes == 0 {
		b.Error("sequence hunt found no inter-test-interference crashes")
	}
}

// BenchmarkHinderingAudit runs the CRASH "H" oracle across all seven
// systems, reporting misreported-error-code counts: zero on the plateau
// systems (Linux, NT, 2000), nonzero on the 9x family.
func BenchmarkHinderingAudit(b *testing.B) {
	counts := make(map[OS]int)
	for i := 0; i < b.N; i++ {
		for _, o := range AllOSes() {
			rs, err := AuditHindering(o)
			if err != nil {
				b.Fatal(err)
			}
			counts[o] = hinderCount(rs)
		}
	}
	for o, n := range counts {
		b.ReportMetric(float64(n), shortOS(o)+"_hindering")
	}
	for _, o := range []OS{Linux, WinNT, Win2000} {
		if counts[o] != 0 {
			b.Errorf("%s misreported %d codes", o, counts[o])
		}
	}
}

func hinderCount(rs []HinderResult) int {
	n := 0
	for _, r := range rs {
		if r.Hindering {
			n++
		}
	}
	return n
}
