// Command repro regenerates every table and figure from the paper:
//
//	repro              # everything, full 5000-case cap
//	repro -cap 500     # faster, smaller campaigns
//	repro -table 1     # just Table 1
//	repro -figure 2    # just Figure 2
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"ballista"
	"ballista/internal/report"
)

func main() {
	capFlag := flag.Int("cap", 5000, "test cases per Module under Test (paper: 5000)")
	table := flag.Int("table", 0, "render only this table (1-3)")
	figure := flag.Int("figure", 0, "render only this figure (1-2)")
	csvDir := flag.String("csv", "", "also write machine-readable muts.csv and groups.csv into this directory")
	flag.Parse()

	start := time.Now()
	results, err := ballista.RunAll(ballista.WithCap(*capFlag))
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
	cases := 0
	for _, r := range results {
		cases += r.CasesRun
	}
	fmt.Printf("Ballista campaigns complete: %d test cases across %d operating systems in %v\n\n",
		cases, len(results), time.Since(start).Round(time.Millisecond))

	all := *table == 0 && *figure == 0
	if all || *table == 1 {
		fmt.Println(ballista.Table1(results))
	}
	if all || *table == 2 {
		fmt.Println(ballista.Table2(results))
	}
	if all || *figure == 1 {
		fmt.Println(ballista.Figure1(results))
	}
	if all || *table == 3 {
		fmt.Println(ballista.Table3(results))
	}
	if all || *figure == 2 {
		fmt.Println(ballista.Figure2(results))
	}
	if *csvDir != "" {
		if err := writeCSVs(*csvDir, results); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		fmt.Printf("CSV written to %s/muts.csv and %s/groups.csv\n", *csvDir, *csvDir)
	}
}

func writeCSVs(dir string, results map[ballista.OS]*ballista.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	muts, err := os.Create(filepath.Join(dir, "muts.csv"))
	if err != nil {
		return err
	}
	defer muts.Close()
	if err := report.WriteMuTCSV(muts, results); err != nil {
		return err
	}
	groups, err := os.Create(filepath.Join(dir, "groups.csv"))
	if err != nil {
		return err
	}
	defer groups.Close()
	return report.WriteGroupCSV(groups, results)
}
