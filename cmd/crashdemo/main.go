// Command crashdemo reproduces the paper's Listing 1 — the one-line C
// program that blue-screened Windows 95, Windows 98 and Windows CE every
// time it ran:
//
//	GetThreadContext(GetCurrentThread(), NULL);
//
// It executes that exact call on all seven simulated systems and reports
// each machine's fate.
package main

import (
	"fmt"
	"os"

	"ballista"
	"ballista/internal/api"
	"ballista/internal/osprofile"
	"ballista/internal/sim/kern"
	"ballista/internal/winapi"
)

func main() {
	fmt.Println("Listing 1.  GetThreadContext(GetCurrentThread(), NULL);")
	fmt.Println()
	impls := winapi.Impls()
	exit := 0
	for _, o := range ballista.AllOSes() {
		if o == ballista.Linux {
			fmt.Printf("  %-14s (no GetThreadContext in the POSIX API)\n", o)
			continue
		}
		p := osprofile.Get(o)
		k := p.NewKernel()
		proc := k.NewProcess()

		// GetCurrentThread()
		cur := &api.Call{K: k, P: proc, Name: "GetCurrentThread", Traits: p.Traits}
		impls["GetCurrentThread"](cur)

		// GetThreadContext(<that handle>, NULL)
		c := &api.Call{
			K: k, P: proc, Name: "GetThreadContext", Traits: p.Traits,
			Def:  p.Defect("GetThreadContext"),
			Args: []api.Arg{api.HandleArg(kern.Handle(uint32(cur.Out.Ret))), api.Ptr(0)},
		}
		impls["GetThreadContext"](c)

		switch {
		case k.Crashed():
			fmt.Printf("  %-14s CATASTROPHIC — %s\n", o, k.CrashReason())
		case c.Out.Exception != 0:
			fmt.Printf("  %-14s Abort — unhandled exception %#08x in the caller\n", o, c.Out.Exception)
		default:
			fmt.Printf("  %-14s %s\n", o, c.Out.String())
			exit = 1
		}
	}
	fmt.Println()
	fmt.Println("Paper: \"a representative test case that has crashed Windows 98 every")
	fmt.Println("time it has been run\" — while NT and 2000 take an access violation.")
	os.Exit(exit)
}
