// Command ballista runs robustness-testing campaigns against the
// simulated operating systems.
//
//	ballista -os win98                 # full campaign on one OS
//	ballista -os linux -mut read      # one Module under Test
//	ballista -os wince -cap 1000 -v   # verbose per-class counts
//	ballista -os win98 -isolated      # fresh machine per test case
//	ballista -os win98 -trace t.jsonl # per-case JSONL trace artifact
//	ballista -os win98 -spans s.jsonl -flight-dir dumps/  # flight recorder
//	ballista -os win98 -metrics-addr :9090   # live Prometheus /metrics
//	ballista -os win98 -pprof-addr localhost:6060  # live pprof profiling
//	ballista -os winnt -workers 8     # sharded parallel campaign farm
//	ballista -os winnt -workers 8 -checkpoint nt.ckpt  # resumable
//	ballista -explore -chains 2000 -seed 7             # sequence fuzzer
//	ballista -explore -diff-os linux,win98,winnt -repro-dir findings/
//	ballista -crashcheck -seed 7                       # crash-consistency oracle
//	ballista -crashcheck -workers 8 -crash-out crash.json -repro-dir findings/
//	ballista -scarce -seed 7                           # resource-scarcity oracle
//	ballista -scarce -scarce-env fd-full,thrashing -scarce-csv scarce.csv
//	ballista -os winnt -chaos-seed 42                  # seeded fault sweep
//	ballista -os winnt -chaos-seed 42 -chaos-preset disk -csv report.csv
//	ballista -os winnt -chaos-plan faults.json -case-deadline 100ms
//	ballista -os winnt -store results.seg              # content-addressed cache
//
// A full campaign with -workers > 1 shards the MuT catalog across a
// farm of simulated machines (one kernel per worker) and merges the
// results deterministically — identical output to a sequential run.
// With -checkpoint, every completed MuT shard is journaled; killing the
// campaign (Ctrl-C) and re-running with the same -checkpoint resumes
// without re-testing finished shards.
//
// -explore runs the coverage-guided sequence fuzzer: call chains of
// length 2-8 mutated under kernel-state-coverage feedback, every
// candidate judged by the cross-OS differential oracle.  The campaign is
// deterministic for a given -seed regardless of -workers; -checkpoint
// journals every candidate so a killed run resumes exactly; -repro-dir
// writes the minimized findings as self-contained JSON reproducers.
//
// -crashcheck runs the crash-consistency differential oracle: the
// bounded B3-style workload set (chains of create/write/fsync/rename/
// link/remove) is executed against the persistence model of each OS
// profile, every crash point's legal post-crash states are enumerated
// under that profile's durability policy (FAT's torn renames, ext2's
// data-only fsync, NTFS's metadata journal, CE's transactional store),
// and an invariant checker's verdicts are compared across profiles.
// The sweep is deterministic for a given -seed regardless of -workers;
// -checkpoint journals per-workload results for kill+resume; -crash-out
// writes the report as a diffable JSON artifact.
//
// -scarce runs the resource-scarcity differential oracle: every catalog
// MuT executes its all-valid test case inside depleted-resource
// environments (handle table full, descriptor table saturated, heap
// pages from commit failure, disk out of blocks, no free process slots)
// on every supporting OS profile, and three oracles judge the outcome —
// CRASH severity under scarcity, graceful degradation (documented
// scarcity code vs crash or lie), and error-path resource leaks.  The
// sweep is deterministic for a given -seed regardless of -workers;
// -checkpoint journals per-item results for kill+resume; -scarce-out /
// -scarce-csv write diffable artifacts; -repro-dir writes minimized
// reproducers.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ballista"
	"ballista/internal/catalog"
	"ballista/internal/cliutil"
	"ballista/internal/core"
	"ballista/internal/explore"
	"ballista/internal/fleet"
	"ballista/internal/osprofile"
	"ballista/internal/report"
	"ballista/internal/telemetry"
	"ballista/internal/version"
)

// atExit holds cleanups (trace/span sink flushes) that must run on
// every exit path.  os.Exit skips deferred calls, so the interrupt
// paths that exit with 128+signum would otherwise leave torn JSONL
// tails; exit() drains this registry first.  LIFO, run exactly once.
var (
	atExitMu  sync.Mutex
	atExitFns []func()
	atExitRun sync.Once
)

func atExit(fn func()) {
	atExitMu.Lock()
	atExitFns = append(atExitFns, fn)
	atExitMu.Unlock()
}

func runAtExit() {
	atExitRun.Do(func() {
		atExitMu.Lock()
		fns := atExitFns
		atExitMu.Unlock()
		for i := len(fns) - 1; i >= 0; i-- {
			fns[i]()
		}
	})
}

// exit is os.Exit with the atExit registry drained first.  Every exit
// path in this command goes through it (or returns from main, whose
// deferred runAtExit covers the success path).
func exit(code int) {
	runAtExit()
	os.Exit(code)
}

func main() {
	defer runAtExit()
	osFlag := flag.String("os", "win98", "target OS: linux win95 win98 win98se winnt win2000 wince")
	mutFlag := flag.String("mut", "", "test a single Module under Test by name")
	capFlag := flag.Int("cap", 5000, "test cases per MuT (paper: 5000)")
	isolated := flag.Bool("isolated", false, "fresh machine per test case (single-test reproduction mode)")
	verbose := flag.Bool("v", false, "per-MuT output")
	hinderFlag := flag.Bool("hinder", false, "run the Hindering-failure (wrong error code) oracle")
	traceFlag := flag.String("trace", "", "write a per-case JSONL trace to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics on this address while the campaign runs")
	workers := flag.Int("workers", 1, "farm worker count for full campaigns (0 = one per CPU)")
	checkpoint := flag.String("checkpoint", "", "journal completed MuT shards to this JSONL file and resume from it")
	exploreFlag := flag.Bool("explore", false, "run the coverage-guided sequence fuzzer with the cross-OS differential oracle")
	chains := flag.Int("chains", 2000, "explore: candidate chain budget")
	seed := flag.Uint64("seed", 1, "explore/crashcheck: campaign seed (same seed = same report)")
	maxLen := flag.Int("maxlen", 8, "explore: maximum chain length (2-8)")
	diffOS := flag.String("diff-os", "", "explore: comma-separated differential-oracle OS set (default: all seven)")
	exploreMuTs := flag.String("explore-muts", "", "explore: comma-separated chain alphabet (default: cross-OS intersection)")
	reproDir := flag.String("repro-dir", "", "explore/crashcheck: write minimized reproducer JSON files to this directory")
	crashFlag := flag.Bool("crashcheck", false, "run the crash-consistency differential oracle over the simulated filesystem")
	crashMaxOps := flag.Int("crash-maxops", 2, "crashcheck: workload chain-length bound (B3's seq bound)")
	crashBudget := flag.Int("crash-budget", 0, "crashcheck: cap the enumerated workload set (0 = exhaustive)")
	crashOS := flag.String("crash-os", "", "crashcheck: comma-separated differential OS set (default: all seven)")
	crashOut := flag.String("crash-out", "", "crashcheck: write the report JSON to this file (a deterministic artifact, diffable across runs)")
	scarceFlag := flag.Bool("scarce", false, "run the resource-scarcity differential oracle (depleted handle/FD/heap/disk/process environments)")
	scarceEnv := flag.String("scarce-env", "", "scarce: environment names or raw axis specs like handles=0,fds=1 (';'-separated; default: the full matrix)")
	scarceOS := flag.String("scarce-os", "", "scarce: comma-separated differential OS set (default: all seven)")
	scarceBudget := flag.Int("scarce-budget", 0, "scarce: cap the MuT union (0 = the full catalog)")
	scarceOut := flag.String("scarce-out", "", "scarce: write the report JSON to this file (a deterministic artifact, diffable across runs)")
	scarceCSV := flag.String("scarce-csv", "", "scarce: write the findings CSV to this file (byte-identical for any -workers)")
	chaosFlags := cliutil.AddChaosFlags(flag.CommandLine)
	fleetFlags := cliutil.AddFleetFlags(flag.CommandLine)
	spanFlags := cliutil.AddSpanFlags(flag.CommandLine)
	storeFlags := cliutil.AddStoreFlags(flag.CommandLine)
	pprofAddr := cliutil.AddPprofFlag(flag.CommandLine)
	serveFleet := flag.String("serve-fleet", "", "coordinate a distributed fleet campaign on this address; workers join with -join")
	joinURL := flag.String("join", "", "join a fleet coordinator at this URL (e.g. http://host:8719) and work its campaign")
	caseDeadline := flag.Duration("case-deadline", 0, "per-case watchdog: a call exceeding this is classified Restart and its machine condemned (required for hang plans)")
	csvFlag := flag.String("csv", "", "write the per-MuT campaign report as CSV to this file (a deterministic artifact, diffable across runs)")
	versionFlag := flag.Bool("version", false, "print the code-version stamp and exit without running a campaign")
	flag.Parse()

	if *versionFlag {
		fmt.Println(version.Stamp())
		return
	}

	target, ok := osprofile.Parse(*osFlag)
	if !ok {
		fmt.Fprintf(os.Stderr, "ballista: unknown OS %q\n", *osFlag)
		exit(2)
	}
	opts := []ballista.Option{ballista.WithCap(*capFlag)}
	if *isolated {
		opts = append(opts, ballista.WithIsolation())
	}

	plan, err := chaosFlags.Plan()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ballista:", err)
		exit(2)
	}
	var chaosStats *ballista.ChaosStats
	if plan != nil {
		chaosStats = ballista.NewChaosStats()
		opts = append(opts, ballista.WithChaos(plan), ballista.WithChaosStats(chaosStats))
	}
	if *caseDeadline > 0 {
		opts = append(opts, ballista.WithCaseDeadline(*caseDeadline))
	}
	if err := cliutil.StartPprof(*pprofAddr); err != nil {
		fmt.Fprintln(os.Stderr, "ballista:", err)
		exit(1)
	}
	spanRec, err := spanFlags.Recorder()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ballista:", err)
		exit(1)
	}
	if spanRec != nil {
		// Registered (not deferred) so the interrupt exit paths flush the
		// JSONL tail too.
		atExit(func() {
			if err := spanRec.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "ballista: closing spans:", err)
			}
		})
		opts = append(opts, ballista.WithSpans(spanRec))
	}
	resultStore, err := storeFlags.Open()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ballista:", err)
		exit(1)
	}
	if resultStore != nil {
		atExit(func() {
			if err := resultStore.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "ballista: closing store:", err)
			}
		})
		opts = append(opts, ballista.WithStore(resultStore))
	}

	var observers []ballista.Observer
	if *traceFlag != "" {
		f, err := os.Create(*traceFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ballista:", err)
			exit(1)
		}
		tw := telemetry.NewTraceWriter(f)
		atExit(func() {
			if err := tw.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "ballista: closing trace:", err)
			}
		})
		observers = append(observers, tw)
	}
	var metrics *telemetry.Metrics
	if *metricsAddr != "" {
		metrics = telemetry.NewMetrics()
		if chaosStats != nil {
			metrics.SetChaosStats(chaosStats)
		}
		if spanRec != nil {
			metrics.SetSpanRecorder(spanRec)
		}
		if resultStore != nil {
			metrics.SetStore(resultStore)
		}
		observers = append(observers, metrics)
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", metrics.Handler())
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "ballista: metrics listener:", err)
			}
		}()
		fmt.Printf("ballista: serving /metrics on %s\n", *metricsAddr)
	}
	if len(observers) > 0 {
		opts = append(opts, ballista.WithObserver(telemetry.Multi(observers...)))
	}

	if *joinURL != "" {
		runJoin(*joinURL, fleetFlags.WorkerName(), *workers, plan, chaosStats, spanRec, resultStore)
		return
	}

	if *serveFleet != "" && !*exploreFlag {
		runServeFleetFarm(fleetServeOpts{
			addr: *serveFleet, target: target, cap: *capFlag,
			caseDeadline: *caseDeadline, checkpoint: *checkpoint,
			plan: plan, chaosStats: chaosStats, observers: observers,
			ttl: fleetFlags.TTL, heartbeat: fleetFlags.Heartbeat,
			csv: *csvFlag, verbose: *verbose, spans: spanRec,
		})
		return
	}

	if *crashFlag {
		runCrashCheck(crashOpts{
			seed: *seed, maxOps: *crashMaxOps, budget: *crashBudget,
			osSet: *crashOS, workers: *workers, checkpoint: *checkpoint,
			reproDir: *reproDir, out: *crashOut, verbose: *verbose,
			observers: observers, spans: spanRec,
		})
		return
	}

	if *scarceFlag {
		runScarceCheck(scarceOpts{
			seed: *seed, budget: *scarceBudget, workers: *workers,
			envSet: *scarceEnv, osSet: *scarceOS, checkpoint: *checkpoint,
			reproDir: *reproDir, out: *scarceOut, csv: *scarceCSV,
			verbose: *verbose, observers: observers, spans: spanRec,
		})
		return
	}

	if *exploreFlag {
		runExplore(target, exploreOpts{
			chains: *chains, seed: *seed, maxLen: *maxLen,
			diffOS: *diffOS, muts: *exploreMuTs,
			workers: *workers, checkpoint: *checkpoint, reproDir: *reproDir,
			verbose: *verbose, observers: observers,
			chaos: plan, chaosStats: chaosStats,
			serveFleet: *serveFleet, fleetTTL: fleetFlags.TTL,
			fleetHeartbeat: fleetFlags.Heartbeat, caseDeadline: *caseDeadline,
			spans: spanRec,
		})
		return
	}

	runner := ballista.NewRunner(target, opts...)

	if *hinderFlag {
		rs, err := ballista.AuditHindering(target)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ballista:", err)
			exit(1)
		}
		bad := 0
		for _, r := range rs {
			mark := "ok"
			if r.Hindering {
				mark = "HINDERING"
				bad++
			}
			fmt.Printf("  %-24s %-40s code=%-4d %s\n", r.Probe.MuT, r.Probe.Desc, r.Code, mark)
		}
		fmt.Printf("%s: %d of %d probes misreport their error code\n", target, bad, len(rs))
		return
	}

	if *mutFlag != "" {
		runSingle(runner, target, *mutFlag)
		return
	}

	// Ctrl-C / SIGTERM stop the campaign identically at the next
	// test-case boundary; with -checkpoint the finished shards are
	// already journaled and a re-run resumes from them.  The exit code
	// is 128+signum (130 SIGINT, 143 SIGTERM) so containerized kills
	// read back conventionally.
	ctx, stop, caught := signalContext()
	defer stop()

	start := time.Now()
	var res *ballista.Result
	// A chaos plan forces the farm path even at -workers 1: substrate
	// fault streams are per machine boot, and only the farm's fresh-
	// machine-per-shard contract keeps a seeded campaign's report
	// independent of the worker count (sequential RunAll shares one
	// machine across MuTs, so its fault stream depends on shard order).
	// A result store forces it for the same fresh-machine reason: store
	// entries are keyed on a shard starting from boot, so only the farm
	// path makes every shard of a campaign cacheable.
	if *workers != 1 || *checkpoint != "" || plan != nil || resultStore != nil {
		fc := ballista.FarmConfig{Workers: *workers, Checkpoint: *checkpoint}
		res, err = ballista.RunFarm(ctx, target, fc, opts...)
	} else {
		res, err = runner.RunAll(ctx)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "ballista: campaign interrupted")
			if *checkpoint != "" {
				fmt.Fprintf(os.Stderr, "ballista: completed shards journaled; re-run with -checkpoint %s to resume\n", *checkpoint)
			}
			exit(signalExitCode(caught))
		}
		fmt.Fprintln(os.Stderr, "ballista:", err)
		exit(1)
	}
	if chaosStats != nil {
		defer printChaosSummary(chaosStats)
	}
	reportCampaign(target, res, time.Since(start), *verbose, *csvFlag)
	if resultStore != nil {
		printStoreSummary(resultStore)
	}
}

// printStoreSummary reports the result store's footprint after a
// campaign (CI greps misses=0 to prove a warm rerun executed nothing).
func printStoreSummary(st *ballista.ResultStore) {
	s := st.Snapshot()
	fmt.Printf("store: hits=%d misses=%d puts=%d evictions=%d entries=%d\n",
		s.Hits, s.Misses, s.Puts, s.Evictions, s.Entries)
}

// reportCampaign prints the campaign summary (and the CSV artifact) —
// shared by the local farm path and the fleet coordinator path, whose
// outputs must be byte-identical.
func reportCampaign(target ballista.OS, res *ballista.Result, elapsed time.Duration, verbose bool, csvPath string) {
	if csvPath != "" {
		if err := writeCSVReport(csvPath, target, res); err != nil {
			fmt.Fprintln(os.Stderr, "ballista:", err)
			exit(1)
		}
	}
	fmt.Printf("%s: %d MuTs, %d test cases, %d reboots, %v\n",
		target, len(res.Results), res.CasesRun, res.Reboots, elapsed.Round(time.Millisecond))
	s := report.Summarize(target, res)
	fmt.Printf("system calls: %d tested, %d Catastrophic, abort %.1f%%, restart %.2f%%\n",
		s.SysTested, s.SysCatastrophic, s.SysAbortPct, s.SysRestartPct)
	fmt.Printf("C library:    %d tested, %d Catastrophic, abort %.1f%%, restart %.2f%%\n",
		s.CLibTested, s.CLibCatastrophic, s.CLibAbortPct, s.CLibRestartPct)
	if names := res.CatastrophicMuTs(); len(names) > 0 {
		fmt.Printf("Catastrophic: %s\n", strings.Join(names, " "))
	}
	if verbose {
		fmt.Println()
		for _, mr := range res.Results {
			fmt.Printf("  %-30s cases=%-5d abort=%5.1f%% restart=%5.2f%% catastrophic=%v\n",
				mr.Name(), mr.Executed(), 100*mr.AbortRate(), 100*mr.RestartRate(), mr.Catastrophic())
		}
	}
}

// runJoin works a fleet campaign as one worker process until the
// campaign completes or a signal stops it.  The chaos flags arm the
// client-side transport plan (the "net" preset); the substrate plan
// comes from the coordinator's campaign spec.
func runJoin(url, name string, slots int, plan *ballista.ChaosPlan, stats *ballista.ChaosStats, spans *ballista.SpanRecorder, st *ballista.ResultStore) {
	ctx, stop, caught := signalContext()
	defer stop()
	if plan != nil && stats == nil {
		stats = ballista.NewChaosStats()
	}
	err := ballista.RunFleetWorker(ctx, ballista.FleetWorkerConfig{
		URL: url, Name: name, Slots: slots, Chaos: plan, ChaosStats: stats,
		Spans: spans, Store: st,
	})
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "ballista: worker interrupted; its leases will expire and be re-dispatched")
			exit(signalExitCode(caught))
		}
		fmt.Fprintln(os.Stderr, "ballista:", err)
		exit(1)
	}
	if stats != nil {
		printChaosSummary(stats)
	}
	if st != nil {
		printStoreSummary(st)
	}
	fmt.Printf("ballista: worker %s finished campaign\n", name)
}

// fleetServeOpts carries the -serve-fleet farm-coordinator flag set.
type fleetServeOpts struct {
	addr         string
	target       ballista.OS
	cap          int
	caseDeadline time.Duration
	checkpoint   string
	plan         *ballista.ChaosPlan
	chaosStats   *ballista.ChaosStats
	observers    []ballista.Observer
	ttl          time.Duration
	heartbeat    time.Duration
	csv          string
	verbose      bool
	spans        *ballista.SpanRecorder
}

// fleetObserver narrows the shared observer set to the fleet hook.
func fleetObserver(observers []ballista.Observer) core.FleetObserver {
	if len(observers) == 0 {
		return nil
	}
	if fo, ok := telemetry.Multi(observers...).(core.FleetObserver); ok {
		return fo
	}
	return nil
}

// runServeFleetFarm coordinates a distributed farm campaign: serve the
// lease table on addr, wait for workers to drain the shard catalog, and
// report exactly what a local farm run would.
func runServeFleetFarm(fo fleetServeOpts) {
	spec := ballista.FleetSpec{
		Kind: fleet.KindFarm, OS: fo.target.WireName(), Cap: fo.cap,
		CaseDeadlineMS: fo.caseDeadline.Milliseconds(), Chaos: fo.plan,
	}
	coord, err := fleet.New(fleet.Config{
		Spec: spec, TTL: fo.ttl, Heartbeat: fo.heartbeat,
		Journal: fo.checkpoint, Chaos: fo.plan, ChaosStats: fo.chaosStats,
		Observer: fleetObserver(fo.observers), Spans: fo.spans,
		Log: telemetry.NewLogger(os.Stderr, "fleet"),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ballista:", err)
		exit(1)
	}
	defer coord.Close()
	srv := &http.Server{Addr: fo.addr, Handler: coord.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "ballista: fleet listener:", err)
			exit(1)
		}
	}()
	fmt.Printf("ballista: fleet coordinator on %s (campaign %s, %s)\n", fo.addr, coord.ID(), fo.target)

	ctx, stop, caught := signalContext()
	defer stop()
	start := time.Now()
	res, err := coord.Wait(ctx)
	if err == nil {
		// Drain grace: idle workers poll at half the heartbeat interval,
		// so serving a moment longer lets them observe the campaign is
		// done and exit instead of retrying against a dead listener.
		drain := fo.heartbeat
		if drain <= 0 {
			drain = fo.ttl / 3
		}
		if drain < 250*time.Millisecond {
			drain = 250 * time.Millisecond
		}
		time.Sleep(drain)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutdownCtx)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "ballista: coordinator interrupted")
			if fo.checkpoint != "" {
				fmt.Fprintf(os.Stderr, "ballista: collected shards journaled; re-run with -checkpoint %s to resume\n", fo.checkpoint)
			}
			exit(signalExitCode(caught))
		}
		fmt.Fprintln(os.Stderr, "ballista:", err)
		exit(1)
	}
	fmt.Printf("ballista: campaign drained by %d workers\n", coord.WorkersSeen())
	reportCampaign(fo.target, res, time.Since(start), fo.verbose, fo.csv)
}

// writeCSVReport stores the per-MuT campaign report as a CSV file — a
// deterministic artifact (no timings, no worker attribution) that CI
// diffs across worker counts and fault plans.
func writeCSVReport(path string, target ballista.OS, res *ballista.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.WriteMuTCSV(f, map[ballista.OS]*ballista.Result{target: res}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// signalContext cancels on SIGINT or SIGTERM — treated identically, so
// an operator Ctrl-C and a container runtime's kill drain the same way —
// and records which signal arrived for the exit code.
func signalContext() (context.Context, context.CancelFunc, *atomic.Int32) {
	ctx, cancel := context.WithCancel(context.Background())
	caught := new(atomic.Int32)
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		select {
		case sig := <-ch:
			if s, ok := sig.(syscall.Signal); ok {
				caught.Store(int32(s))
			}
			cancel()
		case <-ctx.Done():
		}
		signal.Stop(ch)
	}()
	return ctx, cancel, caught
}

// signalExitCode renders the conventional 128+signum exit code (130 for
// SIGINT, 143 for SIGTERM); SIGINT's 130 is the fallback for a
// cancellation whose signal was not observed.
func signalExitCode(caught *atomic.Int32) int {
	if n := caught.Load(); n != 0 {
		return 128 + int(n)
	}
	return 130
}

// printChaosSummary reports the fault plan's footprint after a campaign.
func printChaosSummary(stats *ballista.ChaosStats) {
	snap := stats.Snapshot()
	total := uint64(0)
	for _, n := range snap.Injected {
		total += n
	}
	fmt.Printf("chaos: %d faults injected, %d writes retried, %d shards quarantined, %d calls wedged\n",
		total, snap.Retried, snap.Quarantined, snap.Wedged)
}

// exploreOpts carries the -explore flag set.
type exploreOpts struct {
	chains, maxLen, workers int
	seed                    uint64
	diffOS, muts            string
	checkpoint, reproDir    string
	verbose                 bool
	observers               []ballista.Observer
	chaos                   *ballista.ChaosPlan
	chaosStats              *ballista.ChaosStats
	serveFleet              string
	fleetTTL                time.Duration
	fleetHeartbeat          time.Duration
	caseDeadline            time.Duration
	spans                   *ballista.SpanRecorder
}

func runExplore(primary ballista.OS, eo exploreOpts) {
	cfg := ballista.ExploreConfig{
		Primary: primary, Seed: eo.seed, Budget: eo.chains,
		MaxLen: eo.maxLen, Workers: eo.workers, Checkpoint: eo.checkpoint,
		Chaos: eo.chaos, ChaosStats: eo.chaosStats, Spans: eo.spans,
	}
	if eo.diffOS != "" {
		for _, name := range strings.Split(eo.diffOS, ",") {
			o, ok := osprofile.Parse(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "ballista: unknown OS %q in -diff-os\n", name)
				exit(2)
			}
			cfg.OSes = append(cfg.OSes, o)
		}
	}
	if eo.muts != "" {
		for _, name := range strings.Split(eo.muts, ",") {
			cfg.MuTs = append(cfg.MuTs, strings.TrimSpace(name))
		}
	}
	if len(eo.observers) > 0 {
		if co, ok := telemetry.Multi(eo.observers...).(ballista.ChainObserver); ok {
			cfg.Observer = co
		}
	}

	// -serve-fleet: candidate batches are evaluated by joined workers
	// instead of the local pool; the report stays byte-identical.
	var coord *fleet.Coordinator
	var fleetSrv *http.Server
	if eo.serveFleet != "" {
		var oses []string
		for _, o := range explore.ResolveOSes(primary, cfg.OSes) {
			oses = append(oses, o.WireName())
		}
		spec := ballista.FleetSpec{
			Kind: fleet.KindExplore, OSes: oses,
			Chaos: eo.chaos, CaseDeadlineMS: eo.caseDeadline.Milliseconds(),
		}
		var err error
		coord, err = fleet.New(fleet.Config{
			Spec: spec, TTL: eo.fleetTTL, Heartbeat: eo.fleetHeartbeat,
			ChaosStats: eo.chaosStats, Observer: fleetObserver(eo.observers),
			Spans: eo.spans,
			Log:   telemetry.NewLogger(os.Stderr, "fleet"),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ballista:", err)
			exit(1)
		}
		fleetSrv = &http.Server{Addr: eo.serveFleet, Handler: coord.Handler(), ReadHeaderTimeout: 5 * time.Second}
		go func() {
			if err := fleetSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "ballista: fleet listener:", err)
				exit(1)
			}
		}()
		fmt.Printf("ballista: fleet coordinator on %s (campaign %s, explore)\n", eo.serveFleet, coord.ID())
		cfg.Remote = coord.RemoteEval()
	}

	ctx, stop, caught := signalContext()
	defer stop()

	start := time.Now()
	rep, err := ballista.Explore(ctx, cfg)
	if coord != nil {
		coord.Finish()
		// Drain grace: let idle workers poll once more and observe the
		// campaign is finished before the listener disappears.
		drain := eo.fleetHeartbeat
		if drain <= 0 {
			drain = eo.fleetTTL / 3
		}
		if drain < 250*time.Millisecond {
			drain = 250 * time.Millisecond
		}
		time.Sleep(drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = fleetSrv.Shutdown(shutdownCtx)
		cancel()
		_ = coord.Close()
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "ballista: exploration interrupted")
			if eo.checkpoint != "" {
				fmt.Fprintf(os.Stderr, "ballista: corpus journaled; re-run with -checkpoint %s to resume\n", eo.checkpoint)
			}
			exit(signalExitCode(caught))
		}
		fmt.Fprintln(os.Stderr, "ballista:", err)
		exit(1)
	}
	if eo.chaosStats != nil {
		defer printChaosSummary(eo.chaosStats)
	}

	fmt.Printf("explore %s (oracle: %s): %d chains, corpus %d, %d divergent, %d catastrophic, %v\n",
		rep.Primary, strings.Join(rep.OSes, " "), rep.Executed, rep.CorpusSize,
		rep.DivergentChains, rep.CatastrophicChains, time.Since(start).Round(time.Millisecond))
	fmt.Printf("findings: %d distinct (final call x cross-OS signature)\n", len(rep.Divergences))
	for i, d := range rep.Divergences {
		if !eo.verbose && i >= 10 {
			fmt.Printf("  ... %d more (use -v for all)\n", len(rep.Divergences)-i)
			break
		}
		ch := d.Chain
		if d.Minimized != nil {
			ch = *d.Minimized
		}
		mark := ""
		if d.Catastrophic {
			mark = " CATASTROPHIC"
		}
		fmt.Printf("  %-40s %s%s\n", ch, d.Signature, mark)
	}

	if eo.reproDir != "" {
		if err := os.MkdirAll(eo.reproDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "ballista:", err)
			exit(1)
		}
		reps := rep.Reproducers()
		for i, r := range reps {
			r.Name = fmt.Sprintf("finding-%03d", i)
			path := fmt.Sprintf("%s/finding-%03d.json", strings.TrimRight(eo.reproDir, "/"), i)
			if err := r.WriteFile(path); err != nil {
				fmt.Fprintln(os.Stderr, "ballista:", err)
				exit(1)
			}
		}
		fmt.Printf("wrote %d reproducers to %s\n", len(reps), eo.reproDir)
	}
}

// crashOpts carries the -crashcheck flag set.
type crashOpts struct {
	seed                    uint64
	maxOps, budget, workers int
	osSet, checkpoint       string
	reproDir, out           string
	verbose                 bool
	observers               []ballista.Observer
	spans                   *ballista.SpanRecorder
}

func runCrashCheck(co crashOpts) {
	cfg := ballista.CrashConfig{
		Seed: co.seed, MaxOps: co.maxOps, Budget: co.budget,
		Workers: co.workers, Checkpoint: co.checkpoint, Spans: co.spans,
	}
	if co.osSet != "" {
		for _, name := range strings.Split(co.osSet, ",") {
			o, ok := osprofile.Parse(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "ballista: unknown OS %q in -crash-os\n", name)
				exit(2)
			}
			cfg.OSes = append(cfg.OSes, o)
		}
	}
	if len(co.observers) > 0 {
		cfg.Observer = telemetry.Multi(co.observers...)
	}

	ctx, stop, caught := signalContext()
	defer stop()

	start := time.Now()
	rep, err := ballista.CrashSweep(ctx, cfg)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "ballista: crash sweep interrupted")
			if co.checkpoint != "" {
				fmt.Fprintf(os.Stderr, "ballista: evaluated workloads journaled; re-run with -checkpoint %s to resume\n", co.checkpoint)
			}
			exit(signalExitCode(caught))
		}
		fmt.Fprintln(os.Stderr, "ballista:", err)
		exit(1)
	}

	fmt.Printf("crashcheck (oracle: %s): %d workloads, %d crash points, %d legal states, %d divergent, %d violating, %v\n",
		strings.Join(rep.OSes, " "), rep.Workloads, rep.CrashPoints, rep.States,
		rep.Divergent, rep.Violating, time.Since(start).Round(time.Millisecond))
	fmt.Printf("findings: %d distinct (op kinds x result pattern x violations)\n", len(rep.Findings))
	for i, f := range rep.Findings {
		if !co.verbose && i >= 10 {
			fmt.Printf("  ... %d more (use -v for all)\n", len(rep.Findings)-i)
			break
		}
		fmt.Printf("  %-36s %s\n", f.Workload.Key(), f.Signature)
	}

	if co.out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "ballista:", err)
			exit(1)
		}
		if err := os.WriteFile(co.out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "ballista:", err)
			exit(1)
		}
		fmt.Printf("wrote report to %s\n", co.out)
	}
	if co.reproDir != "" {
		if err := os.MkdirAll(co.reproDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "ballista:", err)
			exit(1)
		}
		reps := rep.Reproducers()
		for i, r := range reps {
			r.Name = fmt.Sprintf("crash-%03d", i)
			path := fmt.Sprintf("%s/crash-%03d.json", strings.TrimRight(co.reproDir, "/"), i)
			if err := r.WriteFile(path); err != nil {
				fmt.Fprintln(os.Stderr, "ballista:", err)
				exit(1)
			}
		}
		fmt.Printf("wrote %d reproducers to %s\n", len(reps), co.reproDir)
	}
}

// scarceOpts carries the -scarce flag set.
type scarceOpts struct {
	seed                    uint64
	budget, workers         int
	envSet, osSet           string
	checkpoint              string
	reproDir, out, csv      string
	verbose                 bool
	observers               []ballista.Observer
	spans                   *ballista.SpanRecorder
}

func runScarceCheck(so scarceOpts) {
	cfg := ballista.ScarceConfig{
		Seed: so.seed, Budget: so.budget,
		Workers: so.workers, Checkpoint: so.checkpoint, Spans: so.spans,
	}
	if so.osSet != "" {
		for _, name := range strings.Split(so.osSet, ",") {
			o, ok := osprofile.Parse(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "ballista: unknown OS %q in -scarce-os\n", name)
				exit(2)
			}
			cfg.OSes = append(cfg.OSes, o)
		}
	}
	if so.envSet != "" {
		// Semicolons separate environments; a segment containing '=' is
		// one raw axis spec (whose own commas separate axes), anything
		// else is a comma-separated list of matrix names.
		for _, seg := range strings.Split(so.envSet, ";") {
			names := []string{seg}
			if !strings.Contains(seg, "=") {
				names = strings.Split(seg, ",")
			}
			for _, name := range names {
				e, err := ballista.ParseScarceEnv(strings.TrimSpace(name))
				if err != nil {
					fmt.Fprintln(os.Stderr, "ballista:", err)
					exit(2)
				}
				cfg.Envs = append(cfg.Envs, e)
			}
		}
	}
	if len(so.observers) > 0 {
		cfg.Observer = telemetry.Multi(so.observers...)
	}

	ctx, stop, caught := signalContext()
	defer stop()

	start := time.Now()
	rep, err := ballista.ScarceSweep(ctx, cfg)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "ballista: scarcity sweep interrupted")
			if so.checkpoint != "" {
				fmt.Fprintf(os.Stderr, "ballista: evaluated items journaled; re-run with -checkpoint %s to resume\n", so.checkpoint)
			}
			exit(signalExitCode(caught))
		}
		fmt.Fprintln(os.Stderr, "ballista:", err)
		exit(1)
	}

	fmt.Printf("scarce (oracle: %s): %d MuTs x %d envs = %d items, %d probes, %d crashed, %d leaked, %d ungraceful, %d divergent, %d violating, %v\n",
		strings.Join(rep.OSes, " "), rep.MuTs, len(rep.Envs), rep.Items, rep.Probes,
		rep.Crashed, rep.Leaked, rep.Ungraceful, rep.Divergent, rep.Violating,
		time.Since(start).Round(time.Millisecond))
	fmt.Printf("findings: %d distinct (MuT x environment x verdict pattern)\n", len(rep.Findings))
	for i, f := range rep.Findings {
		if !so.verbose && i >= 10 {
			fmt.Printf("  ... %d more (use -v for all)\n", len(rep.Findings)-i)
			break
		}
		fmt.Printf("  %-28s %s\n", f.MuT, f.Signature)
	}

	if so.out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "ballista:", err)
			exit(1)
		}
		if err := os.WriteFile(so.out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "ballista:", err)
			exit(1)
		}
		fmt.Printf("wrote report to %s\n", so.out)
	}
	if so.csv != "" {
		f, err := os.Create(so.csv)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ballista:", err)
			exit(1)
		}
		if err := report.WriteScarceCSV(f, rep); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "ballista:", err)
			exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ballista:", err)
			exit(1)
		}
		fmt.Printf("wrote findings CSV to %s\n", so.csv)
	}
	if so.reproDir != "" {
		if err := os.MkdirAll(so.reproDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "ballista:", err)
			exit(1)
		}
		reps := rep.Reproducers()
		for i, r := range reps {
			r.Name = fmt.Sprintf("scarce-%03d", i)
			path := fmt.Sprintf("%s/scarce-%03d.json", strings.TrimRight(so.reproDir, "/"), i)
			if err := r.WriteFile(path); err != nil {
				fmt.Fprintln(os.Stderr, "ballista:", err)
				exit(1)
			}
		}
		fmt.Printf("wrote %d reproducers to %s\n", len(reps), so.reproDir)
	}
}

func runSingle(runner interface {
	RunMuT(ctx context.Context, m catalog.MuT, wide bool) (*ballista.MuTResult, error)
}, target ballista.OS, name string) {
	var mut catalog.MuT
	found := false
	for _, m := range catalog.MuTsFor(target) {
		if m.Name == name {
			mut, found = m, true
			break
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "ballista: %q is not tested on %s\n", name, target)
		exit(2)
	}
	res, err := runner.RunMuT(context.Background(), mut, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ballista:", err)
		exit(1)
	}
	fmt.Printf("%s on %s: %d cases\n", name, target, res.Executed())
	for _, cls := range []ballista.RawClass{
		ballista.Catastrophic, ballista.Restart, ballista.Abort,
		ballista.ErrorReturn, ballista.Clean, ballista.Skip,
	} {
		if n := res.Count(cls); n > 0 {
			fmt.Printf("  %-14s %d\n", cls, n)
		}
	}
	if res.Incomplete {
		fmt.Println("  campaign incomplete: a Catastrophic failure interrupted testing (paper §4)")
	}
}
