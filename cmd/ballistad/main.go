// Command ballistad serves the Ballista testing service over HTTP — the
// architecture the paper's §2 describes: "a central testing server and a
// portable testing client".
//
//	ballistad -addr :8717
//	ballistad -addr :8717 -trace trace.jsonl -metrics-addr :9090
//
// Then, from any client:
//
//	curl localhost:8717/api/oses
//	curl localhost:8717/api/muts?os=wince
//	curl -d '{"os":"win98","mut":"ReadFile","cap":1000}' localhost:8717/api/campaign
//	curl -d '{"os":"win98","mut":"GetThreadContext","case":[5,0]}' localhost:8717/api/case
//	curl -d '{"seed":7,"workers":4}' localhost:8717/api/crashcheck
//	curl 'localhost:8717/api/summary?os=winnt&cap=500'
//	curl 'localhost:8717/api/events?n=50'
//	curl 'localhost:8717/api/spans?limit=50&phase=mut'
//	curl localhost:8717/api/status
//	curl localhost:8717/metrics
//
// With -queue-journal, the server is a multi-tenant campaign platform:
// POST /api/campaigns queues work per tenant (journaled before the 202
// acknowledgement, so a crash replays rather than loses it), GET
// /api/campaigns/{id}/events streams progress as SSE, and the campaign
// history plus CSV artifacts are served after completion.  -store gives
// queued (and synchronous) campaigns a shared content-addressed result
// cache: a resubmitted identical campaign replays from the store
// instead of re-executing.
//
// The server can also coordinate a distributed fleet campaign: POST
// /api/fleet/campaign, then point `ballista -join http://host:8717`
// workers at it.  -fleet-ttl and the -chaos-* flags set the fleet
// defaults (a request's own chaos block still wins).
//
// SIGINT/SIGTERM shut the server down gracefully: in-flight campaigns
// get the grace period to finish, then their contexts are cancelled so
// they stop at the next test-case boundary (rather than only draining
// HTTP while a 5000-case campaign grinds on), the trace file is
// flushed, and the final request counters are logged.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ballista/internal/cliutil"
	"ballista/internal/service"
	"ballista/internal/telemetry"
	"ballista/internal/version"
)

func main() {
	addr := flag.String("addr", ":8717", "listen address")
	traceFlag := flag.String("trace", "", "append every served campaign's per-case JSONL trace to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics on a second listener (it is always on the main mux too)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 30*time.Second, "grace period for in-flight requests on SIGINT/SIGTERM")
	campaignLimit := flag.Int("campaign-limit", service.DefaultMaxCampaigns, "max concurrent heavy requests (campaigns, fuzzing, summaries); excess sheds with 429")
	requestTimeout := flag.Duration("request-timeout", 0, "server-side bound on one heavy request's campaign (0 = client-controlled only)")
	chaosFlags := cliutil.AddChaosFlags(flag.CommandLine)
	fleetFlags := cliutil.AddFleetFlags(flag.CommandLine)
	spanFlags := cliutil.AddSpanFlags(flag.CommandLine)
	storeFlags := cliutil.AddStoreFlags(flag.CommandLine)
	pprofAddr := cliutil.AddPprofFlag(flag.CommandLine)
	queueJournal := flag.String("queue-journal", "", "journal the campaign queue to this JSONL file and resume it on restart")
	tenantQuota := flag.Int("tenant-quota", 0, "max queued+running campaigns per tenant (0 = default)")
	queueWorkers := flag.Int("queue-workers", 0, "concurrent queued-campaign executors (0 = default 1)")
	versionFlag := flag.Bool("version", false, "print the code-version stamp and exit without serving")
	flag.Parse()

	if *versionFlag {
		fmt.Println(version.Stamp())
		return
	}

	logger := telemetry.NewLogger(os.Stderr, "ballistad")

	var svcOpts []service.ServerOption
	svcOpts = append(svcOpts, service.WithLogger(logger))
	if *campaignLimit > 0 {
		svcOpts = append(svcOpts, service.WithCampaignLimit(*campaignLimit))
	}
	if *requestTimeout > 0 {
		svcOpts = append(svcOpts, service.WithRequestTimeout(*requestTimeout))
	}
	if fleetFlags.TTL > 0 {
		svcOpts = append(svcOpts, service.WithFleetTTL(fleetFlags.TTL))
	}
	if plan, err := chaosFlags.Plan(); err != nil {
		logger.Errorf("resolving chaos plan: %v", err)
		os.Exit(1)
	} else if plan != nil {
		svcOpts = append(svcOpts, service.WithFleetChaos(plan))
		logger.Printf("fleet campaigns default to chaos plan (seed %d, %d rules)", plan.Seed, len(plan.Rules))
	}
	if err := cliutil.StartPprof(*pprofAddr); err != nil {
		logger.Errorf("%v", err)
		os.Exit(1)
	} else if *pprofAddr != "" {
		logger.Printf("pprof listener on %s", *pprofAddr)
	}
	spanRec, err := spanFlags.Recorder()
	if err != nil {
		logger.Errorf("opening span sink: %v", err)
		os.Exit(1)
	}
	if spanRec != nil {
		svcOpts = append(svcOpts, service.WithSpanRecorder(spanRec))
		logger.Printf("recording campaign spans (ring + /api/spans)")
	}
	resultStore, err := storeFlags.Open()
	if err != nil {
		logger.Errorf("opening result store: %v", err)
		os.Exit(1)
	}
	if resultStore != nil {
		svcOpts = append(svcOpts, service.WithStore(resultStore))
		logger.Printf("content-addressed result store on (%d entries loaded)", resultStore.Len())
	}
	var queueJnl *service.QueueJournal
	if *queueJournal != "" {
		queueJnl, err = service.OpenQueueJournal(*queueJournal)
		if err != nil {
			logger.Errorf("opening queue journal: %v", err)
			os.Exit(1)
		}
		svcOpts = append(svcOpts, service.WithQueueJournal(queueJnl))
		logger.Printf("campaign queue journaled to %s", *queueJournal)
	}
	if *tenantQuota > 0 {
		svcOpts = append(svcOpts, service.WithTenantQuota(*tenantQuota))
	}
	if *queueWorkers > 0 {
		svcOpts = append(svcOpts, service.WithQueueExecutors(*queueWorkers))
	}
	var tw *telemetry.TraceWriter
	if *traceFlag != "" {
		f, err := os.OpenFile(*traceFlag, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			logger.Errorf("opening trace file: %v", err)
			os.Exit(1)
		}
		tw = telemetry.NewTraceWriter(f)
		svcOpts = append(svcOpts, service.WithCampaignObserver(tw))
		logger.Printf("tracing campaigns to %s", *traceFlag)
	}

	svc := service.NewServer(svcOpts...)
	// Every request context derives from campaignCtx; cancelling it
	// aborts in-flight campaigns at their next test-case boundary.
	campaignCtx, cancelCampaigns := context.WithCancel(context.Background())
	defer cancelCampaigns()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc,
		ReadHeaderTimeout: 5 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return campaignCtx },
	}

	var metricsSrv *http.Server
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", svc.Metrics().Handler())
		metricsSrv = &http.Server{Addr: *metricsAddr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			logger.Printf("metrics listener on %s", *metricsAddr)
			if err := metricsSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Errorf("metrics listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Printf("Ballista testing service on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Errorf("%v", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop()
		logger.Printf("signal received, draining for up to %s", *shutdownTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			// The grace period expired with campaigns still running:
			// cancel their contexts so they stop at the next test-case
			// boundary, then collect the aborted handlers.
			logger.Printf("grace period expired; cancelling in-flight campaigns")
			cancelCampaigns()
			finalCtx, finalCancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer finalCancel()
			if err := srv.Shutdown(finalCtx); err != nil {
				logger.Errorf("shutdown: %v", err)
			}
		}
		if metricsSrv != nil {
			_ = metricsSrv.Shutdown(shutdownCtx)
		}
	}

	// Close the queue first (stops dispatchers, journals nothing further,
	// closes the journal), then the store so its segment is flushed.
	if err := svc.Close(); err != nil {
		logger.Errorf("closing service: %v", err)
	}
	if resultStore != nil {
		if err := resultStore.Close(); err != nil {
			logger.Errorf("closing result store: %v", err)
		}
	}
	if tw != nil {
		if err := tw.Close(); err != nil {
			logger.Errorf("closing trace: %v", err)
		}
	}
	if spanRec != nil {
		if err := spanRec.Close(); err != nil {
			logger.Errorf("closing spans: %v", err)
		}
	}
	logger.Printf("served %d requests; goodbye", servedRequests(svc))
}

// servedRequests reads the total request count back out of the metrics
// registry for the shutdown log line.
func servedRequests(svc *service.Server) uint64 {
	return svc.Metrics().HTTPRequestCount()
}
