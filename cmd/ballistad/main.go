// Command ballistad serves the Ballista testing service over HTTP — the
// architecture the paper's §2 describes: "a central testing server and a
// portable testing client".
//
//	ballistad -addr :8717
//
// Then, from any client:
//
//	curl localhost:8717/api/oses
//	curl localhost:8717/api/muts?os=wince
//	curl -d '{"os":"win98","mut":"ReadFile","cap":1000}' localhost:8717/api/campaign
//	curl -d '{"os":"win98","mut":"GetThreadContext","case":[5,0]}' localhost:8717/api/case
//	curl 'localhost:8717/api/summary?os=winnt&cap=500'
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"ballista/internal/service"
)

func main() {
	addr := flag.String("addr", ":8717", "listen address")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.NewServer(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("ballistad: Ballista testing service on %s\n", *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "ballistad:", err)
		os.Exit(1)
	}
}
