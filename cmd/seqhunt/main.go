// Command seqhunt implements the paper's §5 future work: "we will
// attempt to find ways to reproduce the elusive crashes that we have
// observed to occur ... outside of the current robustness testing
// framework" — i.e. state- and sequence-dependent failures.
//
// It runs ordered pairs of test cases inside one process and reports
// calls whose CRASH classification changes because of what ran first.
// On the 9x family this rediscovers the Table 3 "*" crashes as concrete
// two-call reproduction recipes.
//
//	seqhunt -os win98
//	seqhunt -os win98 -muts strncpy,fwrite,DuplicateHandle -cases 10
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ballista"
	"ballista/internal/catalog"
	"ballista/internal/core"
	"ballista/internal/osprofile"
	"ballista/internal/sequence"
)

func main() {
	osFlag := flag.String("os", "win98", "target OS")
	mutsFlag := flag.String("muts", "strncpy,fwrite,DuplicateHandle,MsgWaitForMultipleObjectsEx,DeleteFile,CreateFile",
		"comma-separated MuT names to pair up")
	casesFlag := flag.Int("cases", 8, "sampled cases per MuT")
	maxPairs := flag.Int("maxpairs", 20000, "pair budget")
	top := flag.Int("top", 15, "findings to print")
	flag.Parse()

	target, ok := osprofile.Parse(*osFlag)
	if !ok {
		fmt.Fprintf(os.Stderr, "seqhunt: unknown OS %q\n", *osFlag)
		os.Exit(2)
	}
	var muts []catalog.MuT
	for _, name := range strings.Split(*mutsFlag, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, m := range catalog.MuTsFor(target) {
			if m.Name == name {
				muts = append(muts, m)
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "seqhunt: %q is not tested on %s (skipping)\n", name, target)
		}
	}
	if len(muts) == 0 {
		fmt.Fprintln(os.Stderr, "seqhunt: no MuTs to pair")
		os.Exit(2)
	}

	start := time.Now()
	ex := sequence.New(
		func() *core.Runner { return ballista.NewRunner(target) },
		muts,
		sequence.Config{CasesPerMuT: *casesFlag, MaxPairs: *maxPairs},
	)
	findings, err := ex.Explore(ballista.Registry())
	if err != nil {
		fmt.Fprintln(os.Stderr, "seqhunt:", err)
		os.Exit(1)
	}
	crashes := sequence.CatastrophicFindings(findings)
	fmt.Printf("%s: %d sequence-dependent divergences (%d machine crashes) in %v\n\n",
		target, len(findings), len(crashes), time.Since(start).Round(time.Millisecond))
	if len(crashes) > 0 {
		fmt.Println("Sequence-induced machine crashes (the paper's 'elusive' inter-test interference):")
		for i, f := range crashes {
			if i >= *top {
				fmt.Printf("  ... and %d more\n", len(crashes)-i)
				break
			}
			fmt.Printf("  %s\n", f)
		}
		fmt.Println()
	}
	fmt.Println("Most severe divergences:")
	for i, f := range findings {
		if i >= *top {
			break
		}
		fmt.Printf("  %s\n", f)
	}
	if len(findings) == 0 {
		fmt.Println("  none — every call behaves identically in isolation and in sequence")
	}
}
