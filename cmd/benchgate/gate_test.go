package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: ballista/internal/farm
cpu: fake
BenchmarkFarm/workers=1-16         	       1	1264841489 ns/op	     31352 cases/sec
BenchmarkFarm/workers=8-16         	       1	 253973669 ns/op	    156154 cases/sec
BenchmarkSequential-16             	       1	1133213063 ns/op	     34996 cases/sec
BenchmarkNoMetric-16               	     100	     12345 ns/op
PASS
ok  	ballista/internal/farm	3.1s
`

func TestParseBenchStripsProcSuffix(t *testing.T) {
	f, err := ParseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(f.Benchmarks))
	}
	b := f.Benchmarks[0]
	if b.Name != "BenchmarkFarm/workers=1" {
		t.Fatalf("proc suffix not stripped: %q", b.Name)
	}
	if b.Iterations != 1 || b.NsPerOp != 1264841489 {
		t.Fatalf("bad parse: %+v", b)
	}
	if b.CasesPerSec == nil || *b.CasesPerSec != 31352 {
		t.Fatalf("bad cases/sec: %+v", b.CasesPerSec)
	}
	if f.Benchmarks[3].CasesPerSec != nil {
		t.Fatalf("metric-less benchmark grew a cases/sec: %+v", f.Benchmarks[3])
	}
}

// gate runs Compare over two parsed bench outputs and reports whether
// the gate fails.
func gate(t *testing.T, baseText, runText string, threshold float64) []Verdict {
	t.Helper()
	base, err := ParseBench(strings.NewReader(baseText))
	if err != nil {
		t.Fatal(err)
	}
	run, err := ParseBench(strings.NewReader(runText))
	if err != nil {
		t.Fatal(err)
	}
	return Compare(base, run, threshold)
}

func anyFailed(vs []Verdict) bool {
	for _, v := range vs {
		if v.Failed() {
			return true
		}
	}
	return false
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	run := strings.ReplaceAll(sampleBench, "156154 cases/sec", "120000 cases/sec")
	vs := gate(t, sampleBench, run, 0.25)
	if anyFailed(vs) {
		t.Fatalf("-23%% regression failed a 25%% gate: %+v", vs)
	}
}

func TestCompareRegressionFails(t *testing.T) {
	run := strings.ReplaceAll(sampleBench, "156154 cases/sec", "100000 cases/sec")
	vs := gate(t, sampleBench, run, 0.25)
	if !anyFailed(vs) {
		t.Fatalf("-36%% regression passed a 25%% gate: %+v", vs)
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	run := strings.ReplaceAll(sampleBench, "31352 cases/sec", "993520 cases/sec")
	vs := gate(t, sampleBench, run, 0.25)
	if anyFailed(vs) {
		t.Fatalf("an improvement failed the gate: %+v", vs)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	var kept []string
	for _, line := range strings.Split(sampleBench, "\n") {
		if !strings.HasPrefix(line, "BenchmarkSequential") {
			kept = append(kept, line)
		}
	}
	vs := gate(t, sampleBench, strings.Join(kept, "\n"), 0.25)
	if !anyFailed(vs) {
		t.Fatalf("dropped benchmark passed the gate: %+v", vs)
	}
}

func TestCompareMetricLessBaselineSkipped(t *testing.T) {
	vs := gate(t, sampleBench, sampleBench, 0.25)
	for _, v := range vs {
		if v.Name == "BenchmarkNoMetric" {
			if !v.Skipped || v.Failed() {
				t.Fatalf("metric-less baseline not skipped: %+v", v)
			}
			return
		}
	}
	t.Fatal("BenchmarkNoMetric verdict missing")
}

func TestBaselineRoundTripAndProcNormalization(t *testing.T) {
	run, err := ParseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "base.json")
	if err := WriteBaseline(path, run); err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Benchmarks) != len(run.Benchmarks) {
		t.Fatalf("round trip lost benchmarks: %d != %d", len(base.Benchmarks), len(run.Benchmarks))
	}
	// An old jq-produced baseline still carrying -N names must match a
	// normalized run.
	data, _ := os.ReadFile(path)
	legacy := strings.ReplaceAll(string(data), `"BenchmarkFarm/workers=1"`, `"BenchmarkFarm/workers=1-16"`)
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err = LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if anyFailed(Compare(base, run, 0.25)) {
		t.Fatal("legacy -N baseline names did not match a normalized run")
	}
}
