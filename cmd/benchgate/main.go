// Command benchgate is the perf regression gate: it parses `go test
// -bench` output, compares the cases/sec custom metric against a
// committed JSON baseline, and exits non-zero when any benchmark lost
// more than the threshold fraction of its baseline throughput.
//
//	go test ./internal/farm -run '^$' -bench BenchmarkFarm -benchtime=1x |
//	    benchgate -baseline BENCH_farm.json
//	... -update       # regenerate the baseline from the new run instead
//	... -threshold 0.25
//
// Benchmark names are normalized by stripping the trailing -GOMAXPROCS
// suffix, so baselines recorded on one core count match runs on
// another.  The baseline JSON schema matches what the CI bench-smoke
// job has always published as an artifact:
//
//	{"go":"bench","benchmarks":[{"name":...,"iterations":N,
//	 "ns_per_op":F,"cases_per_sec":F|null}]}
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	baseline := flag.String("baseline", "", "baseline JSON file to gate against (required)")
	input := flag.String("input", "", "go test -bench output to parse (default: stdin)")
	threshold := flag.Float64("threshold", 0.25, "max tolerated fractional cases/sec regression")
	update := flag.Bool("update", false, "rewrite the baseline from this run instead of gating")
	flag.Parse()

	if *baseline == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline is required")
		os.Exit(2)
	}
	var in io.Reader = os.Stdin
	if *input != "" && *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	run, err := ParseBench(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if len(run.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark lines in input")
		os.Exit(2)
	}

	if *update {
		if err := WriteBaseline(*baseline, run); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(run.Benchmarks), *baseline)
		return
	}

	base, err := LoadBaseline(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	verdicts := Compare(base, run, *threshold)
	failed := false
	for _, v := range verdicts {
		fmt.Println(v)
		if v.Failed() {
			failed = true
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchgate: cases/sec regression beyond %.0f%% of baseline %s\n",
			*threshold*100, *baseline)
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmarks within %.0f%% of baseline\n", len(verdicts), *threshold*100)
}
