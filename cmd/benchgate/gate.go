package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
)

// Benchmark is one parsed benchmark line.  CasesPerSec is a pointer so
// benchmarks without the custom metric round-trip as JSON null, exactly
// like the jq extraction CI has always published.
type Benchmark struct {
	Name        string   `json:"name"`
	Iterations  int      `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	CasesPerSec *float64 `json:"cases_per_sec"`
}

// BenchFile is the baseline JSON schema.
type BenchFile struct {
	Go         string      `json:"go"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchLine matches `go test -bench` result lines, e.g.
//
//	BenchmarkFarm/workers=8-16   1   136067398 ns/op   36749 cases/sec
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+([0-9.]+) cases/sec)?`)

// ParseBench extracts benchmark results from `go test -bench` text
// output.  The trailing -GOMAXPROCS name suffix is stripped so a
// baseline recorded on an N-core host gates a run on an M-core one.
func ParseBench(r io.Reader) (*BenchFile, error) {
	out := &BenchFile{Go: "bench"}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		b := Benchmark{Name: m[1]}
		fmt.Sscanf(m[3], "%d", &b.Iterations)
		fmt.Sscanf(m[4], "%g", &b.NsPerOp)
		if m[5] != "" {
			var cps float64
			fmt.Sscanf(m[5], "%g", &cps)
			b.CasesPerSec = &cps
		}
		out.Benchmarks = append(out.Benchmarks, b)
	}
	return out, sc.Err()
}

// LoadBaseline reads a baseline file, normalizing any -GOMAXPROCS
// suffix old artifacts may carry in their names.
func LoadBaseline(path string) (*BenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f BenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	for i := range f.Benchmarks {
		if m := benchLine.FindStringSubmatch(f.Benchmarks[i].Name + " 1 1 ns/op"); m != nil {
			f.Benchmarks[i].Name = m[1]
		}
	}
	return &f, nil
}

// WriteBaseline stores the run as an indented, newline-terminated
// baseline file — a stable, diffable committed artifact.
func WriteBaseline(path string, f *BenchFile) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Verdict is one benchmark's gate outcome.
type Verdict struct {
	Name     string
	Baseline float64
	Current  float64
	// Delta is the fractional change, negative for regressions.
	Delta float64
	// Missing marks a baseline benchmark absent from the new run (a
	// renamed or deleted benchmark must regenerate the baseline).
	Missing bool
	// Skipped marks a baseline entry without a cases/sec metric.
	Skipped bool
	// threshold the verdict was judged at.
	threshold float64
}

// Failed reports whether this verdict gates the build.
func (v Verdict) Failed() bool {
	if v.Skipped {
		return false
	}
	return v.Missing || v.Delta < -v.threshold
}

func (v Verdict) String() string {
	switch {
	case v.Skipped:
		return fmt.Sprintf("  skip %-40s (no cases/sec metric)", v.Name)
	case v.Missing:
		return fmt.Sprintf("  FAIL %-40s missing from this run (baseline %.0f cases/sec)", v.Name, v.Baseline)
	case v.Failed():
		return fmt.Sprintf("  FAIL %-40s %.0f -> %.0f cases/sec (%+.1f%%, limit -%.0f%%)",
			v.Name, v.Baseline, v.Current, v.Delta*100, v.threshold*100)
	default:
		return fmt.Sprintf("  ok   %-40s %.0f -> %.0f cases/sec (%+.1f%%)",
			v.Name, v.Baseline, v.Current, v.Delta*100)
	}
}

// Compare gates a new run against the baseline: every baseline
// benchmark carrying a cases/sec metric must appear in the run within
// threshold of its baseline throughput.  Extra benchmarks in the run
// are ignored (they gate once the baseline is regenerated).
func Compare(base, run *BenchFile, threshold float64) []Verdict {
	current := make(map[string]Benchmark, len(run.Benchmarks))
	for _, b := range run.Benchmarks {
		current[b.Name] = b
	}
	verdicts := make([]Verdict, 0, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		v := Verdict{Name: b.Name, threshold: threshold}
		if b.CasesPerSec == nil {
			v.Skipped = true
			verdicts = append(verdicts, v)
			continue
		}
		v.Baseline = *b.CasesPerSec
		got, ok := current[b.Name]
		if !ok || got.CasesPerSec == nil {
			v.Missing = true
			verdicts = append(verdicts, v)
			continue
		}
		v.Current = *got.CasesPerSec
		if v.Baseline > 0 {
			v.Delta = (v.Current - v.Baseline) / v.Baseline
		}
		verdicts = append(verdicts, v)
	}
	sort.Slice(verdicts, func(i, j int) bool { return verdicts[i].Name < verdicts[j].Name })
	return verdicts
}
