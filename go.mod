module ballista

go 1.22
