package ballista

import (
	"testing"

	"ballista/internal/catalog"
	"ballista/internal/core"
)

// TestValidArgumentsDoNotFail drives every Module under Test on every OS
// with an all-non-exceptional test case (the first benign value of each
// parameter pool) and requires a sane outcome: no Abort, no Restart, no
// Catastrophic failure.  Ballista only measures responses to exceptional
// input; an API that misbehaves on valid input would invalidate the
// whole measurement.
// canonicalValue names a semantically safe pool value per type for the
// valid-path sweep.  A pool's first non-exceptional value is benign *per
// type* but not per combination (div's CINT=0 denominator, ctime's legal
// NULL), which is exactly Ballista's documented correlated-parameter
// limitation; the canonical picks sidestep it.
var canonicalValue = map[string]string{
	"CINT":      "UPPER_A",
	"CLONG":     "ONE",
	"DOUBLE":    "HALF",
	"TIMETPTR":  "VALID",
	"TMPTR":     "VALID",
	"FMT":       "PLAIN",
	"PATH":      "EXISTING_FILE",
	"LPPATH":    "EXISTING_FILE",
	"FILEPTR":   "OPEN_READ",
	"FILEMODE":  "R",
	"HEAPBLK":   "VALID",
	"PID":       "SELF",
	"UID":       "CURRENT",
	"GID":       "CURRENT",
	"SIZE_T":    "SIXTEEN",
	"MEMLEN":    "SIXTEEN",
	"COUNT32":   "ONE",
	"HWAITABLE": "EVENT_SIGNALED",
	// read(stdin) legitimately blocks; pick a real file descriptor.
	"FD": "OPEN_FILE",
	// fgets/sprintf/strncpy into an 8-byte buffer legitimately overflow
	// (C semantics); give them page-sized room.
	"STRBUF":  "PAGE4K",
	"MEMBUF":  "PAGE4K",
	"CMEMBUF": "PAGE4K",
}

func TestValidArgumentsDoNotFail(t *testing.T) {
	reg := Registry()
	for _, o := range AllOSes() {
		runner := NewRunner(o)
		for _, m := range catalog.MuTsFor(o) {
			tc := make(core.Case, len(m.Params))
			ok := true
			for i, tn := range m.Params {
				dt, found := reg.Lookup(tn)
				if !found {
					t.Fatalf("type %s missing", tn)
				}
				idx := -1
				if want := canonicalValue[tn]; want != "" {
					for vi, v := range dt.Values {
						if v.Name == want {
							idx = vi
							break
						}
					}
				}
				if idx < 0 {
					for vi, v := range dt.Values {
						if !v.Exceptional {
							idx = vi
							break
						}
					}
				}
				if idx < 0 {
					ok = false
					break
				}
				tc[i] = idx
			}
			if !ok {
				continue
			}
			cls, err := runner.RunCase(m, tc, false)
			if err != nil {
				t.Fatalf("%s %s: %v", o, m.Name, err)
			}
			switch cls {
			case Abort, Restart, Catastrophic:
				t.Errorf("%s: %s with all-valid arguments classified %v", o, m.Name, cls)
			}
		}
	}
}

// TestAllExceptionalFirstValue drives every MuT with the first
// *exceptional* value in every pool (where one exists) and requires the
// machine to satisfy the reproduction's invariants: only the Table 3
// functions may crash, and the harness never loses track of a case.
func TestAllExceptionalFirstValue(t *testing.T) {
	reg := Registry()
	for _, o := range AllOSes() {
		runner := NewRunner(o, WithIsolation())
		allowedCrash := make(map[string]bool)
		for _, fn := range profileDefects(o) {
			allowedCrash[fn] = true
		}
		for _, m := range catalog.MuTsFor(o) {
			tc := make(core.Case, len(m.Params))
			for i, tn := range m.Params {
				dt, _ := reg.Lookup(tn)
				idx := 0
				for vi, v := range dt.Values {
					if v.Exceptional {
						idx = vi
						break
					}
				}
				tc[i] = idx
			}
			cls, err := runner.RunCase(m, tc, false)
			if err != nil {
				t.Fatalf("%s %s: %v", o, m.Name, err)
			}
			if cls == Catastrophic && !allowedCrash[m.Name] && !ceStdioCrash(o, m) {
				t.Errorf("%s: %s crashed outside the Table 3 inventory", o, m.Name)
			}
		}
	}
}

func profileDefects(o OS) []string {
	return osprofileGet(o).DefectFunctions()
}

func ceStdioCrash(o OS, m catalog.MuT) bool {
	return o == WinCE && m.API == catalog.CLib && catalog.CEStdioRawKernel(m.Name, false)
}
