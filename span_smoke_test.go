package ballista_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"

	"ballista"
	"ballista/internal/fleet"
	"ballista/internal/report"
	"ballista/internal/telemetry/span"
)

// mutCSV renders the merged campaign report the way the CLI's -csv
// flag does — the deterministic artifact the spans must not perturb.
func mutCSV(t *testing.T, o ballista.OS, res *ballista.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := report.WriteMuTCSV(&buf, map[ballista.OS]*ballista.Result{o: res}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSpansArePureObservation is the flight recorder's determinism
// oracle: a campaign's merged CSV must be byte-identical with spans off
// and spans on (full sink + flight ring), at 1 and 8 workers, and under
// a retryable chaos plan.  A recorder that influenced scheduling, case
// generation or classification would show up here.
func TestSpansArePureObservation(t *testing.T) {
	run := func(workers int, plan *ballista.ChaosPlan, rec *ballista.SpanRecorder) []byte {
		opts := []ballista.Option{ballista.WithCap(chaosSmokeCap)}
		if plan != nil {
			opts = append(opts, ballista.WithChaos(plan))
		}
		if rec != nil {
			opts = append(opts, ballista.WithSpans(rec))
		}
		res, err := ballista.RunFarm(context.Background(), ballista.WinNT,
			ballista.FarmConfig{Workers: workers}, opts...)
		if err != nil {
			t.Fatalf("%d workers: %v", workers, err)
		}
		return mutCSV(t, ballista.WinNT, res)
	}
	for _, tc := range []struct {
		name    string
		workers int
		chaos   bool
	}{
		{"1-worker", 1, false},
		{"8-worker", 8, false},
		{"8-worker-chaos", 8, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var plan *ballista.ChaosPlan
			if tc.chaos {
				plan = smokePlan(t, "disk", 42)
			}
			off := run(tc.workers, plan, nil)
			var sink bytes.Buffer
			rec := ballista.NewSpanRecorder(ballista.SpanOptions{Sink: &sink})
			on := run(tc.workers, plan, rec)
			if err := rec.Close(); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(off, on) {
				t.Error("merged CSV differs with spans on")
			}
			if rec.Seen() == 0 || sink.Len() == 0 {
				t.Fatal("spans-on run recorded nothing; the oracle tested nothing")
			}
		})
	}
}

// TestFleetSpanTraceLinkage runs a distributed campaign over the HTTP
// loopback and asserts the observability contract end to end: the
// worker's recorder adopts the coordinator's campaign identity as its
// trace ID at join, and a fleet-run case span's parent chain walks
// case -> mut -> unit inside that single trace.
func TestFleetSpanTraceLinkage(t *testing.T) {
	coordRec := span.New(span.Options{})
	coord, err := fleet.New(fleet.Config{
		Spec:  fleet.CampaignSpec{Kind: fleet.KindFarm, OS: "winnt", Cap: 30},
		Spans: coordRec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	workerRec := ballista.NewSpanRecorder(ballista.SpanOptions{Ring: 1 << 16})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	werr := make(chan error, 1)
	go func() {
		werr <- ballista.RunFleetWorker(ctx, ballista.FleetWorkerConfig{
			URL: ts.URL, Name: "span-w", Slots: 2, Spans: workerRec,
		})
	}()
	if _, err := coord.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := <-werr; err != nil && err != context.Canceled {
		t.Fatal(err)
	}

	campaign := coord.ID()
	if got := coordRec.Trace(); got != campaign {
		t.Fatalf("coordinator trace %q, want campaign %q", got, campaign)
	}
	if got := workerRec.Trace(); got != campaign {
		t.Fatalf("worker trace %q did not adopt campaign %q at join", got, campaign)
	}

	// The coordinator's control plane must have recorded the fabric.
	phases := coordRec.PhaseStats()
	for _, phase := range []string{"join", "lease", "upload"} {
		if phases[phase].Count == 0 {
			t.Errorf("coordinator recorded no %q spans", phase)
		}
	}

	// Index the worker ring and walk one case span's ancestry.
	records := workerRec.Last(0)
	byID := make(map[string]span.Record, len(records))
	for _, r := range records {
		byID[r.ID] = r
	}
	linked := 0
	for _, r := range records {
		if r.Phase != "case" {
			continue
		}
		if r.Trace != campaign {
			t.Fatalf("case span %s carries trace %q, want %q", r.ID, r.Trace, campaign)
		}
		mut, ok := byID[r.Parent]
		if !ok || mut.Phase != "mut" {
			continue // parent evicted from the ring or still open at snapshot time
		}
		unit, ok := byID[mut.Parent]
		if !ok || unit.Phase != "unit" {
			continue
		}
		if mut.Trace != campaign || unit.Trace != campaign {
			t.Fatalf("ancestry of case %s leaves the campaign trace", r.ID)
		}
		linked++
	}
	if linked == 0 {
		t.Fatal("no case span's chain linked back through mut and unit to the campaign trace")
	}
}
