package ballista_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ballista"
)

func scarceReportJSON(t *testing.T, rep *ballista.ScarceReport) []byte {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestScarceSweepDeterminismOracle is the facade-level determinism
// oracle for the resource-scarcity dimension: the seeded sweep must
// produce a byte-identical report at one worker and at eight, and a
// sweep killed mid-run must resume from its checkpoint journal to that
// same report.
func TestScarceSweepDeterminismOracle(t *testing.T) {
	cfg := ballista.ScarceConfig{Seed: 7, Budget: 60, Workers: 1}
	ref, err := ballista.ScarceSweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Probes == 0 || len(ref.Findings) == 0 {
		t.Fatalf("reference sweep is empty: %d probes, %d findings", ref.Probes, len(ref.Findings))
	}
	want := scarceReportJSON(t, ref)

	for _, workers := range []int{2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			c := cfg
			c.Workers = workers
			rep, err := ballista.ScarceSweep(context.Background(), c)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, scarceReportJSON(t, rep)) {
				t.Errorf("report at %d workers is not byte-identical to 1 worker", workers)
			}
		})
	}

	t.Run("kill+resume", func(t *testing.T) {
		c := cfg
		c.Workers = 4
		c.Checkpoint = filepath.Join(t.TempDir(), "scarce.ckpt")
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := ballista.ScarceSweep(ctx, c); err == nil {
			t.Fatal("cancelled sweep reported no error")
		}
		resumed, err := ballista.ScarceSweep(context.Background(), c)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, scarceReportJSON(t, resumed)) {
			t.Error("resumed report is not byte-identical to the uninterrupted run")
		}
	})
}

// TestScarceSweepMatchesGolden pins the default seed-7 sweep (full
// catalog union, full environment matrix, all seven profiles) to the
// committed artifact.  A change to any depletion hook, oracle grading,
// or environment definition shifts the findings and must come with a
// regenerated golden: go run ./cmd/ballista -scarce -seed 7 -workers 8
// -scarce-out testdata/scarcesweep-golden.json
func TestScarceSweepMatchesGolden(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "scarcesweep-golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ballista.ScarceSweep(context.Background(), ballista.ScarceConfig{Seed: 7, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	if !bytes.Equal(golden, got) {
		t.Error("seed-7 sweep diverges from testdata/scarcesweep-golden.json; " +
			"if intentional, regenerate with -scarce -scarce-out")
	}
}

// TestScarceReproducerRoundTrip: a reproducer written by the sweep
// loads back and re-verifies through the facade, and rejects tampering.
func TestScarceReproducerRoundTrip(t *testing.T) {
	rep, err := ballista.ScarceSweep(context.Background(),
		ballista.ScarceConfig{Seed: 7, Budget: 60, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("budgeted sweep found nothing to round-trip")
	}
	reps := rep.Reproducers()
	if len(reps) != len(rep.Findings) {
		t.Fatalf("%d reproducers from %d findings", len(reps), len(rep.Findings))
	}
	dir := t.TempDir()
	r := reps[0]
	r.Name = "rt-000"
	path := filepath.Join(dir, "rt-000.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := ballista.LoadScarceReproducer(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ballista.VerifyScarceReproducer(loaded, rep.Seed); err != nil {
		t.Fatalf("round-tripped reproducer fails verification: %v", err)
	}

	// Tamper with a recorded verdict: verification must notice.
	loaded.Verdicts[loaded.OSes[0]].Fired += 17
	if err := ballista.VerifyScarceReproducer(loaded, rep.Seed); err == nil {
		t.Error("tampered reproducer verified cleanly")
	}

	// A version bump is rejected at load time.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(strings.Replace(string(data), `"v": 1`, `"v": 99`, 1)), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ballista.LoadScarceReproducer(bad); err == nil {
		t.Error("versioned-up reproducer loaded cleanly")
	}
}

// TestGoldenScarceCorpus replays every minimized scarcity reproducer in
// testdata/corpus/scarce and asserts each MuT still earns the recorded
// per-OS verdict inside its depleted environment.  A change to a
// depletion hook, an implementation's error path, or an oracle grading
// rule shows up here as a named, replayable failure.
func TestGoldenScarceCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "corpus", "scarce", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 5 {
		t.Fatalf("golden scarce corpus too small: %d files, want at least 5", len(files))
	}
	var violating, divergent, leaked int
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			rep, err := ballista.LoadScarceReproducer(path)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			if rep.Violating {
				violating++
			}
			if rep.Divergent {
				divergent++
			}
			for _, v := range rep.Verdicts {
				if v.Leaked {
					leaked++
					break
				}
			}
			if !rep.Divergent && !rep.Violating {
				t.Error("reproducer is neither divergent nor violating; it is not a finding")
			}
			if err := ballista.VerifyScarceReproducer(rep, 7); err != nil {
				t.Errorf("replay mismatch: %v", err)
			}
		})
	}
	if violating == 0 {
		t.Error("scarce corpus contains no oracle violations")
	}
	if divergent == 0 {
		t.Error("scarce corpus contains no cross-OS divergences")
	}
	if leaked == 0 {
		t.Error("scarce corpus contains no error-path leak findings")
	}
}
